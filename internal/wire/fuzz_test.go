package wire

import (
	"reflect"
	"testing"

	"repro/internal/proto"
)

// FuzzDecode exercises the decoder with arbitrary datagrams: it must never
// panic, and anything that decodes must re-encode and decode to the same
// message (canonical round-trip). Seeds come from real encodings.
func FuzzDecode(f *testing.F) {
	seeds := []proto.Message{
		{Kind: proto.SubscribeMsg, From: 1, To: 2, Subscriber: 1},
		{Kind: proto.RetransmitRequestMsg, From: 3, To: 4,
			Request: []proto.EventID{{Origin: 1, Seq: 2}}},
		{Kind: proto.RetransmitReplyMsg, From: 5, To: 6,
			Reply:     []proto.Event{{ID: proto.EventID{Origin: 7, Seq: 8}, Payload: []byte("x")}},
			ReplyHops: []uint32{1}},
		sampleGossip(),
	}
	for _, m := range seeds {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	batch, err := EncodeBatch(seeds)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)
	f.Add([]byte{})
	f.Add([]byte{'L', 1, 1})
	f.Add([]byte{'L', 2, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := Decode(data); err == nil {
			// Canonical round-trip: re-encoding a decoded message and
			// decoding again must be a fixed point.
			buf2, err := Encode(m)
			if err != nil {
				t.Fatalf("decoded message does not re-encode: %+v: %v", m, err)
			}
			m2, err := Decode(buf2)
			if err != nil {
				t.Fatalf("re-encoded message does not decode: %v", err)
			}
			if !reflect.DeepEqual(m, m2) {
				t.Fatalf("round-trip not a fixed point:\n1st %+v\n2nd %+v", m, m2)
			}
		}
		// The container decoder must hold the same invariants: no panics,
		// and anything accepted re-encodes to the same batch.
		msgs, err := DecodeBatch(data, nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		buf2, err := EncodeBatch(msgs)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %+v: %v", msgs, err)
		}
		msgs2, err := DecodeBatch(buf2, nil)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(msgs, msgs2) {
			t.Fatalf("batch round-trip not a fixed point:\n1st %+v\n2nd %+v", msgs, msgs2)
		}
	})
}
