package wire

import (
	"reflect"
	"testing"

	"repro/internal/proto"
)

// FuzzDecode exercises the decoder with arbitrary datagrams: it must never
// panic, and anything that decodes must re-encode and decode to the same
// message (canonical round-trip). Seeds come from real encodings.
func FuzzDecode(f *testing.F) {
	seeds := []proto.Message{
		{Kind: proto.SubscribeMsg, From: 1, To: 2, Subscriber: 1},
		{Kind: proto.RetransmitRequestMsg, From: 3, To: 4,
			Request: []proto.EventID{{Origin: 1, Seq: 2}}},
		{Kind: proto.RetransmitReplyMsg, From: 5, To: 6,
			Reply:     []proto.Event{{ID: proto.EventID{Origin: 7, Seq: 8}, Payload: []byte("x")}},
			ReplyHops: []uint32{1}},
		sampleGossip(),
	}
	for _, m := range seeds {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	batch, err := EncodeBatch(seeds)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)
	f.Add([]byte{})
	f.Add([]byte{'L', 1, 1})
	f.Add([]byte{'L', 2, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := Decode(data); err == nil {
			// Canonical round-trip: re-encoding a decoded message and
			// decoding again must be a fixed point.
			buf2, err := Encode(m)
			if err != nil {
				t.Fatalf("decoded message does not re-encode: %+v: %v", m, err)
			}
			m2, err := Decode(buf2)
			if err != nil {
				t.Fatalf("re-encoded message does not decode: %v", err)
			}
			if !reflect.DeepEqual(m, m2) {
				t.Fatalf("round-trip not a fixed point:\n1st %+v\n2nd %+v", m, m2)
			}
		}
		// The container decoder must hold the same invariants: no panics,
		// and anything accepted re-encodes to the same batch.
		msgs, err := DecodeBatch(data, nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		buf2, err := EncodeBatch(msgs)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %+v: %v", msgs, err)
		}
		msgs2, err := DecodeBatch(buf2, nil)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(msgs, msgs2) {
			t.Fatalf("batch round-trip not a fixed point:\n1st %+v\n2nd %+v", msgs, msgs2)
		}
	})
}

// FuzzDecodeContainer focuses the fuzzer on the version-2 container
// format: frame-count and frame-length prefixes are the decoder's most
// dangerous inputs (hostile counts, truncated inner frames, nested
// containers). The harness mutates whole datagrams seeded with real
// containers in hostile shapes; the decoder must never panic, anything
// accepted must round-trip canonically, and a rejected container must not
// leave partially-decoded messages unreported.
func FuzzDecodeContainer(f *testing.F) {
	frame := func(m proto.Message) []byte {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	sub := frame(proto.Message{Kind: proto.SubscribeMsg, From: 1, To: 2, Subscriber: 1})
	gos := frame(sampleGossip())
	req := frame(proto.Message{Kind: proto.RetransmitRequestMsg, From: 3, To: 4,
		Request: []proto.EventID{{Origin: 1, Seq: 2}}})

	pack := func(frames ...[]byte) []byte {
		buf, err := PackFrames(frames)
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	// Well-formed containers of every arity the transport produces.
	f.Add(pack(sub, gos))
	f.Add(pack(gos, req, sub))
	f.Add(pack(sub, sub, sub, sub))
	// Hostile shapes: a container nested inside a container frame slot, a
	// lying frame count, truncated length prefixes, and giant counts.
	f.Add(pack(pack(sub, gos), req))
	f.Add([]byte{'L', 2, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte{'L', 2, 2, 3, 'L', 1})
	f.Add(append(pack(sub, gos)[:8], 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodeBatch(data, nil)
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		// Canonical round-trip through the batch encoder.
		buf2, err := EncodeBatch(msgs)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %+v: %v", msgs, err)
		}
		msgs2, err := DecodeBatch(buf2, nil)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(msgs, msgs2) {
			t.Fatalf("container round-trip not a fixed point:\n1st %+v\n2nd %+v", msgs, msgs2)
		}
		// Decoding into a warm scratch slice must agree with the fresh
		// decode — the UDP read loop reuses its scratch across datagrams.
		scratch := make([]proto.Message, 0, 8)
		scratch = append(scratch, proto.Message{Kind: proto.SubscribeMsg, Subscriber: 42})
		msgs3, err := DecodeBatch(data, scratch[:0])
		if err != nil {
			t.Fatalf("scratch decode rejected what fresh decode accepted: %v", err)
		}
		if !reflect.DeepEqual(msgs, msgs3) {
			t.Fatalf("scratch decode diverged:\nfresh   %+v\nscratch %+v", msgs, msgs3)
		}
	})
}
