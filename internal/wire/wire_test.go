package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/proto"
)

func sampleGossip() proto.Message {
	return proto.Message{
		Kind: proto.GossipMsg,
		From: 7,
		To:   9,
		Gossip: &proto.Gossip{
			From:   7,
			Subs:   []proto.ProcessID{7, 12, 13},
			Unsubs: []proto.Unsubscription{{Process: 4, Stamp: 1000}},
			Events: []proto.Event{
				{ID: proto.EventID{Origin: 7, Seq: 1}, Payload: []byte("hello")},
				{ID: proto.EventID{Origin: 8, Seq: 2}},
			},
			Digest:           []proto.EventID{{Origin: 7, Seq: 1}, {Origin: 8, Seq: 2}},
			DigestWatermarks: []proto.EventID{{Origin: 7, Seq: 10}},
		},
	}
}

func roundTrip(t *testing.T, m proto.Message) proto.Message {
	t.Helper()
	buf, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestRoundTripGossip(t *testing.T) {
	t.Parallel()
	m := sampleGossip()
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nsent %+v\ngot  %+v", m, got)
	}
}

func TestRoundTripEmptyGossip(t *testing.T) {
	t.Parallel()
	m := proto.Message{Kind: proto.GossipMsg, From: 1, To: 2, Gossip: &proto.Gossip{From: 1}}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", m, got)
	}
}

func TestRoundTripSubscribe(t *testing.T) {
	t.Parallel()
	m := proto.Message{Kind: proto.SubscribeMsg, From: 3, To: 4, Subscriber: 3}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", m, got)
	}
}

func TestRoundTripRetransmitRequest(t *testing.T) {
	t.Parallel()
	m := proto.Message{
		Kind:    proto.RetransmitRequestMsg,
		From:    1,
		To:      2,
		Request: []proto.EventID{{Origin: 5, Seq: 6}},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", m, got)
	}
}

func TestRoundTripRetransmitReply(t *testing.T) {
	t.Parallel()
	m := proto.Message{
		Kind:      proto.RetransmitReplyMsg,
		From:      1,
		To:        2,
		Reply:     []proto.Event{{ID: proto.EventID{Origin: 5, Seq: 6}, Payload: []byte{0, 1, 2}}},
		ReplyHops: []uint32{3},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", m, got)
	}
}

func TestEncodeRejectsBadMessages(t *testing.T) {
	t.Parallel()
	if _, err := Encode(proto.Message{Kind: proto.GossipMsg}); err == nil {
		t.Error("encoded gossip without body")
	}
	if _, err := Encode(proto.Message{Kind: proto.MessageKind(77)}); err == nil {
		t.Error("encoded unknown kind")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", []byte{'X', 1, 1}, ErrBadMagic},
		{"bad version", []byte{'L', 9, 1}, ErrBadVersion},
		{"kind only", []byte{'L', 1}, ErrTruncated},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			_, err := Decode(c.buf)
			if err == nil {
				t.Fatal("Decode succeeded on garbage")
			}
			if c.want != nil && !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	t.Parallel()
	buf, err := Encode(sampleGossip())
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(buf); i++ {
		if _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("prefix of length %d decoded successfully", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	t.Parallel()
	buf, err := Encode(sampleGossip())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	t.Parallel()
	// Craft a gossip header announcing 2^40 subs.
	buf := []byte{'L', 1, byte(proto.GossipMsg), 1, 2, 1}
	buf = append(buf, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^40
	if _, err := Decode(buf); err == nil {
		t.Fatal("huge count accepted")
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		r.Read(buf)
		_, _ = Decode(buf) // must not panic
	}
}

func TestDecodeMutatedMessagesNeverPanic(t *testing.T) {
	t.Parallel()
	base, err := Encode(sampleGossip())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		buf := append([]byte(nil), base...)
		for j := 0; j < 1+r.Intn(4); j++ {
			buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
		}
		if m, err := Decode(buf); err == nil {
			// A mutated message may still decode; it must at least be
			// structurally sound.
			if m.Kind == proto.GossipMsg && m.Gossip == nil {
				t.Fatal("decoded gossip without body")
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(from, to, origin uint16, seq uint64, payload []byte, subsRaw []uint16, stamps []uint32) bool {
		subs := make([]proto.ProcessID, len(subsRaw))
		for i, s := range subsRaw {
			subs[i] = proto.ProcessID(s)
		}
		unsubs := make([]proto.Unsubscription, len(stamps))
		for i, s := range stamps {
			unsubs[i] = proto.Unsubscription{Process: proto.ProcessID(i + 1), Stamp: uint64(s)}
		}
		if len(payload) == 0 {
			payload = nil
		}
		if len(subs) == 0 {
			subs = nil
		}
		if len(unsubs) == 0 {
			unsubs = nil
		}
		m := proto.Message{
			Kind: proto.GossipMsg,
			From: proto.ProcessID(from),
			To:   proto.ProcessID(to),
			Gossip: &proto.Gossip{
				From:   proto.ProcessID(from),
				Subs:   subs,
				Unsubs: unsubs,
				Events: []proto.Event{{ID: proto.EventID{Origin: proto.ProcessID(origin), Seq: seq}, Payload: payload}},
			},
		}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeIsCompact(t *testing.T) {
	t.Parallel()
	// A default-shaped gossip (15 subs, 60 digest ids, 40 small events) must
	// fit comfortably in one UDP datagram.
	g := &proto.Gossip{From: 1}
	for i := 0; i < 15; i++ {
		g.Subs = append(g.Subs, proto.ProcessID(i+1))
	}
	for i := 0; i < 60; i++ {
		g.Digest = append(g.Digest, proto.EventID{Origin: proto.ProcessID(i%8 + 1), Seq: uint64(i)})
	}
	for i := 0; i < 40; i++ {
		g.Events = append(g.Events, proto.Event{
			ID:      proto.EventID{Origin: 1, Seq: uint64(i)},
			Payload: []byte("0123456789abcdef"),
		})
	}
	buf, err := Encode(proto.Message{Kind: proto.GossipMsg, From: 1, To: 2, Gossip: g})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 8192 {
		t.Errorf("encoded size %d exceeds 8 KiB", len(buf))
	}
}

func sampleBatch() []proto.Message {
	return []proto.Message{
		sampleGossip(),
		{Kind: proto.SubscribeMsg, From: 3, To: 9, Subscriber: 3},
		{Kind: proto.RetransmitRequestMsg, From: 5, To: 9,
			Request: []proto.EventID{{Origin: 1, Seq: 4}}},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	t.Parallel()
	msgs := sampleBatch()
	buf, err := EncodeBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msgs, got) {
		t.Fatalf("batch round trip mismatch:\nsent %+v\ngot  %+v", msgs, got)
	}
}

func TestBatchOfOneStaysVersionOne(t *testing.T) {
	t.Parallel()
	// The compat contract: a single-message batch emits a plain v1 frame
	// readable by pre-batch receivers...
	m := sampleGossip()
	buf, err := EncodeBatch([]proto.Message{m})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Decode(buf)
	if err != nil {
		t.Fatalf("single-message batch is not a v1 frame: %v", err)
	}
	if !reflect.DeepEqual(m, single) {
		t.Fatalf("mismatch: %+v vs %+v", m, single)
	}
	// ...and DecodeBatch accepts v1 frames, so batch-capable receivers read
	// pre-batch senders.
	got, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(m, got[0]) {
		t.Fatalf("DecodeBatch(v1 frame) = %+v", got)
	}
}

func TestDecodeRejectsContainerFrame(t *testing.T) {
	t.Parallel()
	// A v1-only Decode must cleanly reject a container rather than
	// misparse it.
	buf, err := EncodeBatch(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("Decode(container) = %v, want ErrBadVersion", err)
	}
}

func TestBatchRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := EncodeBatch(nil); err == nil {
		t.Error("encoded empty batch")
	}
	if _, err := PackFrames(nil); err == nil {
		t.Error("packed empty frame list")
	}
	if _, err := PackFrames(make([][]byte, MaxBatchLen+1)); err == nil {
		t.Error("packed oversized frame list")
	}
	if _, err := DecodeBatch(nil, nil); err == nil {
		t.Error("decoded empty buffer")
	}
	if _, err := DecodeBatch([]byte{'X', versionBatch}, nil); err == nil {
		t.Error("decoded bad magic")
	}
	// Container announcing one frame but holding none.
	if _, err := DecodeBatch([]byte{'L', versionBatch, 1}, nil); err == nil {
		t.Error("decoded truncated container")
	}
	// Empty container.
	if _, err := DecodeBatch([]byte{'L', versionBatch, 0}, nil); err == nil {
		t.Error("decoded empty container")
	}
}

func TestBatchTruncationsNeverPanic(t *testing.T) {
	t.Parallel()
	buf, err := EncodeBatch(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeBatch(buf[:i], nil); err == nil {
			t.Fatalf("container prefix of length %d decoded successfully", i)
		}
	}
	if _, err := DecodeBatch(append(buf, 0xFF), nil); err == nil {
		t.Fatal("trailing byte after container accepted")
	}
}

func BenchmarkEncodeBatch(b *testing.B) {
	msgs := sampleBatch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBatch(msgs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeGossip(b *testing.B) {
	m := sampleGossip()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeGossip(b *testing.B) {
	buf, err := Encode(sampleGossip())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
