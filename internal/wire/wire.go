// Package wire encodes protocol messages into a compact, versioned binary
// format suitable for UDP datagrams, using only the standard library
// (encoding/binary varints). The single-message format is:
//
//	magic byte 'L' | version 1 | kind | from | to | kind-specific body
//
// The batch container format (version 2) packs several single-message
// frames into one datagram, so a burst of messages to the same destination
// costs one syscall:
//
//	magic byte 'L' | version 2 | count | (frame length | frame bytes)*
//
// where every inner frame is a complete version-1 message. Single messages
// keep the version-1 frame on the wire, so batch-capable senders remain
// readable by version-1-only receivers until a burst actually forms.
//
// All integers are unsigned varints. Decoding is defensive: every count is
// bounded before allocation so a corrupt or hostile datagram cannot force
// large allocations, and all errors are reported rather than panicking.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/proto"
)

const (
	magic        byte = 'L'
	version      byte = 1
	versionBatch byte = 2
)

// Decode limits: a datagram announcing more than these counts is rejected
// outright. They are far above anything the protocol produces.
const (
	maxListLen    = 1 << 16
	maxPayloadLen = 1 << 20
	// MaxBatchLen bounds the number of messages one container frame may
	// carry.
	MaxBatchLen = 1 << 12
)

// ErrTruncated is returned when a message ends before its announced
// content.
var ErrTruncated = errors.New("wire: truncated message")

// ErrBadMagic is returned for messages not starting with the magic byte.
var ErrBadMagic = errors.New("wire: bad magic byte")

// ErrBadVersion is returned for unsupported format versions.
var ErrBadVersion = errors.New("wire: unsupported version")

type encoder struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (e *encoder) byte(b byte) { e.buf = append(e.buf, b) }

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) pid(p proto.ProcessID) { e.uvarint(uint64(p)) }

func (e *encoder) eventID(id proto.EventID) {
	e.pid(id.Origin)
	e.uvarint(id.Seq)
}

func (e *encoder) event(ev proto.Event) {
	e.eventID(ev.ID)
	e.bytes(ev.Payload)
}

func (e *encoder) idList(ids []proto.EventID) {
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.eventID(id)
	}
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, ErrTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) count(max int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("wire: count %d exceeds limit %d", v, max)
	}
	return int(v), nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.count(maxPayloadLen)
	if err != nil {
		return nil, err
	}
	if d.off+n > len(d.buf) {
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out, nil
}

func (d *decoder) pid() (proto.ProcessID, error) {
	v, err := d.uvarint()
	return proto.ProcessID(v), err
}

func (d *decoder) eventID() (proto.EventID, error) {
	origin, err := d.pid()
	if err != nil {
		return proto.EventID{}, err
	}
	seq, err := d.uvarint()
	if err != nil {
		return proto.EventID{}, err
	}
	return proto.EventID{Origin: origin, Seq: seq}, nil
}

func (d *decoder) event() (proto.Event, error) {
	id, err := d.eventID()
	if err != nil {
		return proto.Event{}, err
	}
	payload, err := d.bytes()
	if err != nil {
		return proto.Event{}, err
	}
	return proto.Event{ID: id, Payload: payload}, nil
}

func (d *decoder) idList() ([]proto.EventID, error) {
	n, err := d.count(maxListLen)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]proto.EventID, n)
	for i := range out {
		if out[i], err = d.eventID(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Encode serializes m.
func Encode(m proto.Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 256)}
	e.byte(magic)
	e.byte(version)
	e.byte(byte(m.Kind))
	e.pid(m.From)
	e.pid(m.To)
	switch m.Kind {
	case proto.GossipMsg:
		if m.Gossip == nil {
			return nil, errors.New("wire: gossip message without gossip body")
		}
		g := m.Gossip
		e.pid(g.From)
		e.uvarint(uint64(len(g.Subs)))
		for _, p := range g.Subs {
			e.pid(p)
		}
		e.uvarint(uint64(len(g.Unsubs)))
		for _, u := range g.Unsubs {
			e.pid(u.Process)
			e.uvarint(u.Stamp)
		}
		e.uvarint(uint64(len(g.Events)))
		for _, ev := range g.Events {
			e.event(ev)
		}
		e.idList(g.Digest)
		e.idList(g.DigestWatermarks)
	case proto.SubscribeMsg:
		e.pid(m.Subscriber)
	case proto.RetransmitRequestMsg:
		e.idList(m.Request)
	case proto.RetransmitReplyMsg:
		e.uvarint(uint64(len(m.Reply)))
		for _, ev := range m.Reply {
			e.event(ev)
		}
		e.uvarint(uint64(len(m.ReplyHops)))
		for _, h := range m.ReplyHops {
			e.uvarint(uint64(h))
		}
	default:
		return nil, fmt.Errorf("wire: cannot encode message kind %v", m.Kind)
	}
	return e.buf, nil
}

// Decode parses a message previously produced by Encode.
func Decode(buf []byte) (proto.Message, error) {
	d := &decoder{buf: buf}
	var m proto.Message

	mg, err := d.byte()
	if err != nil {
		return m, err
	}
	if mg != magic {
		return m, ErrBadMagic
	}
	ver, err := d.byte()
	if err != nil {
		return m, err
	}
	if ver != version {
		return m, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	kind, err := d.byte()
	if err != nil {
		return m, err
	}
	m.Kind = proto.MessageKind(kind)
	if m.From, err = d.pid(); err != nil {
		return m, err
	}
	if m.To, err = d.pid(); err != nil {
		return m, err
	}

	switch m.Kind {
	case proto.GossipMsg:
		var g proto.Gossip
		if g.From, err = d.pid(); err != nil {
			return m, err
		}
		n, err := d.count(maxListLen)
		if err != nil {
			return m, err
		}
		if n > 0 {
			g.Subs = make([]proto.ProcessID, n)
			for i := range g.Subs {
				if g.Subs[i], err = d.pid(); err != nil {
					return m, err
				}
			}
		}
		if n, err = d.count(maxListLen); err != nil {
			return m, err
		}
		if n > 0 {
			g.Unsubs = make([]proto.Unsubscription, n)
			for i := range g.Unsubs {
				if g.Unsubs[i].Process, err = d.pid(); err != nil {
					return m, err
				}
				if g.Unsubs[i].Stamp, err = d.uvarint(); err != nil {
					return m, err
				}
			}
		}
		if n, err = d.count(maxListLen); err != nil {
			return m, err
		}
		if n > 0 {
			g.Events = make([]proto.Event, n)
			for i := range g.Events {
				if g.Events[i], err = d.event(); err != nil {
					return m, err
				}
			}
		}
		if g.Digest, err = d.idList(); err != nil {
			return m, err
		}
		if g.DigestWatermarks, err = d.idList(); err != nil {
			return m, err
		}
		m.Gossip = &g
	case proto.SubscribeMsg:
		if m.Subscriber, err = d.pid(); err != nil {
			return m, err
		}
	case proto.RetransmitRequestMsg:
		if m.Request, err = d.idList(); err != nil {
			return m, err
		}
	case proto.RetransmitReplyMsg:
		n, err := d.count(maxListLen)
		if err != nil {
			return m, err
		}
		if n > 0 {
			m.Reply = make([]proto.Event, n)
			for i := range m.Reply {
				if m.Reply[i], err = d.event(); err != nil {
					return m, err
				}
			}
		}
		if n, err = d.count(maxListLen); err != nil {
			return m, err
		}
		if n > 0 {
			m.ReplyHops = make([]uint32, n)
			for i := range m.ReplyHops {
				h, err := d.uvarint()
				if err != nil {
					return m, err
				}
				if h > 1<<31 {
					return m, fmt.Errorf("wire: hop count %d out of range", h)
				}
				m.ReplyHops[i] = uint32(h)
			}
		}
	default:
		return m, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	if d.off != len(buf) {
		return m, fmt.Errorf("wire: %d trailing bytes", len(buf)-d.off)
	}
	return m, nil
}

// PackFrames builds a version-2 container datagram from pre-encoded
// single-message frames. Callers that budget datagram sizes (the UDP
// transport) encode messages individually and pack greedily.
func PackFrames(frames [][]byte) ([]byte, error) {
	if len(frames) == 0 {
		return nil, errors.New("wire: empty batch")
	}
	if len(frames) > MaxBatchLen {
		return nil, fmt.Errorf("wire: batch of %d frames exceeds limit %d", len(frames), MaxBatchLen)
	}
	size := 2
	for _, f := range frames {
		size += binary.MaxVarintLen32 + len(f)
	}
	e := &encoder{buf: make([]byte, 0, size)}
	e.byte(magic)
	e.byte(versionBatch)
	e.uvarint(uint64(len(frames)))
	for _, f := range frames {
		e.bytes(f)
	}
	return e.buf, nil
}

// EncodeBatch serializes a burst of messages bound for one destination. A
// single message keeps the plain version-1 frame (so pre-batch receivers
// stay compatible); two or more are packed into a container frame.
func EncodeBatch(msgs []proto.Message) ([]byte, error) {
	switch len(msgs) {
	case 0:
		return nil, errors.New("wire: empty batch")
	case 1:
		return Encode(msgs[0])
	}
	frames := make([][]byte, len(msgs))
	for i, m := range msgs {
		f, err := Encode(m)
		if err != nil {
			return nil, err
		}
		frames[i] = f
	}
	return PackFrames(frames)
}

// DecodeBatch parses a datagram holding either a single version-1 frame or
// a version-2 container, appending the contained messages to out. On error
// the returned slice holds the messages decoded before the failure.
func DecodeBatch(buf []byte, out []proto.Message) ([]proto.Message, error) {
	if len(buf) < 2 {
		return out, ErrTruncated
	}
	if buf[0] != magic {
		return out, ErrBadMagic
	}
	if buf[1] != versionBatch {
		m, err := Decode(buf)
		if err != nil {
			return out, err
		}
		return append(out, m), nil
	}
	d := &decoder{buf: buf, off: 2}
	n, err := d.count(MaxBatchLen)
	if err != nil {
		return out, err
	}
	if n == 0 {
		return out, errors.New("wire: empty container frame")
	}
	for i := 0; i < n; i++ {
		flen, err := d.count(maxPayloadLen)
		if err != nil {
			return out, err
		}
		if d.off+flen > len(d.buf) {
			return out, ErrTruncated
		}
		m, err := Decode(d.buf[d.off : d.off+flen])
		if err != nil {
			return out, err
		}
		d.off += flen
		out = append(out, m)
	}
	if d.off != len(buf) {
		return out, fmt.Errorf("wire: %d trailing bytes after container", len(buf)-d.off)
	}
	return out, nil
}
