package golden

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// This file is a hand-rolled property harness in the gopter style: a
// deterministic generator draws scenarios from the configuration space the
// golden registry cannot enumerate, and every draw must satisfy the
// system's invariants — conservation, view bounds, and tape determinism
// across executors — even though no golden file exists for it. Failures
// print the drawing seed, so any counterexample replays exactly.

// genOptions draws a random but valid cluster configuration.
func genOptions(r *rng.Source) (sim.Options, int) {
	cfg := core.DefaultConfig()
	switch r.Intn(3) {
	case 0:
		cfg.MaxEvents = 1 // saturation regime
	case 1:
		cfg.MaxEvents = 5
	}
	switch r.Intn(3) {
	case 0:
		cfg.Retransmit = true
		cfg.MaxRetransmitPerGossip = 4
		if r.Intn(2) == 0 {
			cfg.RetransmitTimeout = 2
		}
	case 1:
		cfg.AssumeFromDigest = true
	}
	rounds := 8 + r.Intn(9) // 8..16
	opts := sim.Options{
		N:       20 + r.Intn(101), // 20..120
		Seed:    r.Uint64(),
		Lpbcast: cfg,
		Epsilon: []float64{0, 0.05, 0.2}[r.Intn(3)],
		Tau:     []float64{0, 0.02}[r.Intn(2)],
		Horizon: uint64(rounds),
		Async:   r.Intn(2) == 0,
	}
	return opts, rounds
}

// genScenario wraps a drawn configuration in an anonymous Scenario with a
// random publish load, so the tape recorder can run it.
func genScenario(r *rng.Source, i int) Scenario {
	opts, rounds := genOptions(r)
	return Scenario{
		Name:   fmt.Sprintf("prop-%d", i),
		Kind:   KindCluster,
		Opts:   opts,
		Load:   Load{From: 1, To: 1 + r.Intn(rounds), Rate: 1 + r.Intn(3)},
		Rounds: rounds,
	}
}

// TestPropertyTapeDeterminism asserts, for random scenarios, that the
// recorded tape is byte-identical between the sequential and sharded
// executors — the golden suite's canonicalization must hold over the whole
// scenario space, not just the nine registered points.
func TestPropertyTapeDeterminism(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for i := 0; i < iters; i++ {
		seed := uint64(0x9e3779b97f4a7c15)*uint64(i+1) + 1
		r := rng.New(seed)
		s := genScenario(r, i)
		seq, err := RecordVariant(s, sim.RunConfig{Workers: 1})
		if err != nil {
			t.Fatalf("seed %#x: sequential record: %v", seed, err)
		}
		par, err := RecordVariant(s, sim.RunConfig{Workers: -1})
		if err != nil {
			t.Fatalf("seed %#x: sharded record: %v", seed, err)
		}
		if err := Compare(par, seq); err != nil {
			t.Errorf("seed %#x (n=%d async=%v eps=%g): executor tapes diverge: %v",
				seed, s.Opts.N, s.Opts.Async, s.Opts.Epsilon, err)
		}
	}
}

// TestPropertyInvariants runs random scenarios directly and checks the
// invariants no configuration may break: NetStats conservation at every
// round, and membership views bounded by l = MaxView.
func TestPropertyInvariants(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for i := 0; i < iters; i++ {
		seed := uint64(0xd1342543de82ef95)*uint64(i+1) + 3
		r := rng.New(seed)
		opts, rounds := genOptions(r)
		c, err := sim.NewCluster(opts)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		for round := 1; round <= rounds; round++ {
			if round <= rounds/2 {
				if _, err := c.PublishAt(r.Intn(opts.N)); err != nil {
					t.Fatalf("seed %#x: publish: %v", seed, err)
				}
			}
			c.RunRound()
			if err := c.NetStats().Conserved(); err != nil {
				t.Fatalf("seed %#x round %d: conservation broken: %v", seed, round, err)
			}
		}
		maxView := opts.Lpbcast.Membership.MaxView
		for pid, view := range c.Graph() {
			if len(view) > maxView {
				t.Errorf("seed %#x: process %s view %d exceeds l=%d", seed, pid, len(view), maxView)
			}
		}
		c.Close()
	}
}
