package golden

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// update rewrites the checked-in tapes instead of diffing against them:
//
//	go test ./internal/golden -run TestGoldenTapes -update
//
// Review the resulting tape diff like any other code change.
var update = flag.Bool("update", false, "rewrite golden tapes under testdata/golden")

// tapeDir is DefaultDir reached from this package directory.
const tapeDir = "../../" + DefaultDir

// TestGoldenTapes records every registered scenario and byte-compares the
// tape against the checked-in golden file. For cluster scenarios it also
// re-records under the sharded executor (Workers=GOMAXPROCS) and — where
// the scenario is marked BothClocks — under the event clock, asserting
// byte-identical tapes: the determinism guarantees of PRs 4-8, measured
// end to end.
func TestGoldenTapes(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			got, err := Record(s)
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			path := filepath.Join(tapeDir, File(s.Name))
			if *update {
				if err := os.MkdirAll(tapeDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d bytes)", path, len(got))
			} else {
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("no golden tape (run with -update to record): %v", err)
				}
				if err := Compare(got, want); err != nil {
					dumpMismatch(t, s.Name, got)
					t.Errorf("golden mismatch for %s: %v", s.Name, err)
				}
			}

			if s.Kind != KindCluster {
				return // the bus executor is single-threaded; no variants
			}
			sharded := s.Opts.RunConfig
			sharded.Workers = -1 // GOMAXPROCS
			gotPar, err := RecordVariant(s, sharded)
			if err != nil {
				t.Fatalf("record workers=max: %v", err)
			}
			if err := Compare(gotPar, got); err != nil {
				t.Errorf("tape differs between Workers=1 and Workers=max: %v", err)
			}
			if s.BothClocks {
				ev := s.Opts.RunConfig
				ev.Clock = sim.ClockEvent
				gotEv, err := RecordVariant(s, ev)
				if err != nil {
					t.Fatalf("record clock=event: %v", err)
				}
				if err := Compare(gotEv, got); err != nil {
					t.Errorf("tape differs between round and event clocks: %v", err)
				}
			}
		})
	}
}

// dumpMismatch writes the freshly recorded tape to $GOLDEN_DIFF_DIR so CI
// can upload mismatches as artifacts for offline diffing.
func dumpMismatch(t *testing.T, name string, got []byte) {
	dir := os.Getenv("GOLDEN_DIFF_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("GOLDEN_DIFF_DIR: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.got.tape", name))
	if err := os.WriteFile(path, got, 0o644); err != nil {
		t.Logf("GOLDEN_DIFF_DIR: %v", err)
		return
	}
	t.Logf("recorded tape dumped to %s", path)
}

// TestLookup pins the registry surface the CLI record/replay path uses.
func TestLookup(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry has %d scenarios, want >= 8", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate scenario name %q", n)
		}
		seen[n] = true
		if _, ok := Lookup(n); !ok {
			t.Fatalf("Lookup(%q) failed for registered scenario", n)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
}

// TestCompare pins the diff formatting contract.
func TestCompare(t *testing.T) {
	if err := Compare([]byte("a\nb\n"), []byte("a\nb\n")); err != nil {
		t.Fatalf("identical tapes compared unequal: %v", err)
	}
	err := Compare([]byte("a\nb\nc\n"), []byte("a\nB\nc\n"))
	if err == nil {
		t.Fatal("divergent tapes compared equal")
	}
	if want := "line 2"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not cite %q", err, want)
	}
	if err := Compare([]byte("a\n"), []byte("a\nb\n")); err == nil {
		t.Fatal("truncated tape compared equal")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
