// Package golden turns whole-system behavior into a byte diff.
//
// The paper's claims are end-to-end: reliability degrades gracefully under
// loss, crashes, partitions, and buffer pressure. Unit tests pin single
// layers; this package pins the composition. A golden run records a
// canonical, versioned event tape — publishes, deliveries, membership
// churn, NetStats/engine/view checkpoints — from a named scenario through
// the trace.Tracer seam, and CI diffs the tape against a checked-in file
// under testdata/golden/ (the sim-record technique: any behavioral drift,
// intended or not, shows up as a one-line diff instead of a silent curve
// shift).
//
// Tapes are canonical by construction, never by luck:
//
//   - Events are buffered per round and sorted (or aggregated into counts)
//     before serialization, so the sharded executors' nondeterministic
//     intra-round delivery order cannot leak into the bytes. A scenario's
//     tape is therefore byte-identical for any Workers setting, and — for
//     scenarios marked BothClocks — across the round and event clocks,
//     which the golden tests assert on every run.
//   - The tape header fingerprints the scenario's semantics (n, protocol,
//     seed, fault schedule) but never the execution variant (Workers,
//     clock), so cross-variant comparison is plain byte equality.
//   - Checkpoints use only integer counters and an order-independent FNV
//     view hash; no floats, no wall-clock times, no map-iteration order.
//
// Regenerating after an intended behavior change:
//
//	go test ./internal/golden -run TestGoldenTapes -update
//
// or equivalently `go run ./cmd/lpbcast-sim -record` from the repo root;
// review the tape diff like any other code change. docs/SCENARIOS.md
// catalogs every scenario and the qualitative outcome its tape encodes.
package golden

import (
	"bytes"
	"fmt"
	"strings"
)

// Version is the tape format version; bump it when the serialization
// changes shape (every tape regenerates on a bump, so diffs stay readable).
const Version = 1

// DefaultDir is the tape directory relative to the repository root.
const DefaultDir = "testdata/golden"

// File returns the tape filename for a scenario name.
func File(name string) string { return name + ".tape" }

// compareContext is how many matching lines are replayed before the first
// divergence when Compare formats its error.
const compareContext = 3

// Compare diffs a freshly recorded tape against the checked-in bytes.
// It returns nil when they are identical, and otherwise an error citing
// the first divergent line with a little surrounding context — enough to
// see *what* drifted without dumping whole tapes into test logs.
func Compare(got, want []byte) error {
	if bytes.Equal(got, want) {
		return nil
	}
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	i := 0
	for i < len(gl) && i < len(wl) && gl[i] == wl[i] {
		i++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tapes diverge at line %d", i+1)
	lo := i - compareContext
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < i; j++ {
		fmt.Fprintf(&b, "\n  ...   %s", gl[j])
	}
	line := func(ls []string, k int) string {
		if k < len(ls) {
			return ls[k]
		}
		return "<end of tape>"
	}
	fmt.Fprintf(&b, "\n  want: %s", line(wl, i))
	fmt.Fprintf(&b, "\n  got:  %s", line(gl, i))
	fmt.Fprintf(&b, "\n(%d recorded lines, %d golden lines)", len(gl), len(wl))
	return fmt.Errorf("%s", b.String())
}

// tapeWriter accumulates tape lines.
type tapeWriter struct {
	b strings.Builder
}

func (w *tapeWriter) linef(format string, args ...any) {
	fmt.Fprintf(&w.b, format, args...)
	w.b.WriteByte('\n')
}

func (w *tapeWriter) bytes() []byte { return []byte(w.b.String()) }
