package golden

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/pbcast"
	"repro/internal/proto"
	"repro/internal/pubsub"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind discriminates the two scenario families.
type Kind int

const (
	// KindCluster drives a sim.Cluster (one flat broadcast group).
	KindCluster Kind = iota
	// KindBus drives a pubsub.Bus (topics, live churn).
	KindBus
)

// Publish schedules one notification: process index Proc publishes at the
// top of round Round, before the round's gossip runs (the experiment-loop
// convention).
type Publish struct {
	Round, Proc int
}

// Load is an arithmetic publish rotation: Rate publishes per round over
// rounds [From, To], at process indices (31r+17k) mod N. It generates
// sustained pressure without per-scenario publish tables.
type Load struct {
	From, To, Rate int
}

// BusPublish schedules one notification on a topic rank's seed member.
type BusPublish struct {
	Round, Rank int
}

// ChurnPhase adds live membership churn to a bus scenario: during rounds
// [From, To], Joins fresh clients subscribe to topic rank TopicRank and
// Leaves of the oldest churn-created subscriptions cancel, each round.
// A cancel refused by the unSubs-buffer bound (§3.4 back-pressure) is
// recorded on the tape and retried the next round.
type ChurnPhase struct {
	From, To  int
	Joins     int
	TopicRank int
	Leaves    int
}

// BusSetup is the bus-scenario half of a Scenario.
type BusSetup struct {
	// Cfg shapes the bus; the recorder installs its own Tracer.
	Cfg pubsub.Config
	// Workload is the initial Zipf deployment (Topics > 0 required).
	Workload pubsub.Workload
	// Publishes schedules notifications by topic rank.
	Publishes []BusPublish
	// Churn schedules live join/leave phases.
	Churn []ChurnPhase
}

// Scenario is one named golden workload. The zero value is not useful;
// scenarios live in the registry (scenarios.go) and are looked up by name.
type Scenario struct {
	// Name is the registry key and the tape's base filename.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Kind selects the cluster or bus recorder.
	Kind Kind
	// Rounds is the recorded horizon (gossip rounds / bus steps).
	Rounds int
	// CheckpointEvery inserts NetStats/engine/view checkpoint blocks every
	// k rounds (0 means every 8); the final round always checkpoints.
	CheckpointEvery int
	// PerProcess lists each delivery as its own sorted line instead of
	// aggregating per-event counts — readable for small scenarios, too
	// verbose for saturation ones.
	PerProcess bool
	// BothClocks marks a cluster scenario whose tape must be byte-identical
	// on ClockRounds and ClockEvent (rounds-granular, synchronous models
	// only — the clock-bridge guarantee).
	BothClocks bool
	// Knobs is a free-form fingerprint suffix naming the knobs that make
	// the scenario adversarial (printed into the tape header).
	Knobs string

	// Opts configures the cluster (KindCluster). The recorder installs its
	// own Tracer and, for variant checks, overrides RunConfig.
	Opts sim.Options
	// Publishes and Load schedule cluster notifications.
	Publishes []Publish
	Load      Load

	// Bus configures the bus scenario (KindBus).
	Bus BusSetup
}

func (s Scenario) checkpointEvery() int {
	if s.CheckpointEvery <= 0 {
		return 8
	}
	return s.CheckpointEvery
}

// Record produces the scenario's canonical tape, using the scenario's own
// run configuration.
func Record(s Scenario) ([]byte, error) {
	return RecordVariant(s, s.Opts.RunConfig)
}

// RecordVariant records a cluster scenario under an alternate execution
// configuration (Workers, Clock) — the tape must come out byte-identical,
// which the golden tests assert. Bus scenarios have a single-threaded
// deterministic executor, so rc is ignored for them.
func RecordVariant(s Scenario, rc sim.RunConfig) ([]byte, error) {
	switch s.Kind {
	case KindCluster:
		return recordCluster(s, rc)
	case KindBus:
		return recordBus(s)
	default:
		return nil, fmt.Errorf("golden: unknown scenario kind %d", int(s.Kind))
	}
}

// collector buffers trace events between round boundaries. The sharded
// executors record concurrently, hence the lock; drain order is
// canonicalized by the tape writer, never trusted.
type collector struct {
	mu  sync.Mutex
	evs []trace.Event
}

// Record implements trace.Tracer.
func (c *collector) Record(e trace.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
}

// drain returns and clears the buffered events.
func (c *collector) drain() []trace.Event {
	c.mu.Lock()
	out := c.evs
	c.evs = nil
	c.mu.Unlock()
	return out
}

func recordCluster(s Scenario, rc sim.RunConfig) ([]byte, error) {
	opts := s.Opts
	col := &collector{}
	opts.Tracer = col
	opts.RunConfig = rc
	c, err := sim.NewCluster(opts)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", s.Name, err)
	}
	defer c.Close()
	col.drain() // warmup rounds are not part of the tape

	var w tapeWriter
	w.linef("golden-tape v%d", Version)
	w.linef("scenario %s", s.Name)
	w.linef("kind cluster")
	w.linef("config n=%d proto=%s seed=%d eps=%g tau=%g rounds=%d",
		opts.N, opts.Protocol, opts.Seed, opts.Epsilon, opts.Tau, s.Rounds)
	if s.Knobs != "" {
		w.linef("knobs %s", s.Knobs)
	}

	published := 0
	for r := 1; r <= s.Rounds; r++ {
		w.linef("round %d", r)
		for _, p := range s.Publishes {
			if p.Round != r {
				continue
			}
			ev, err := c.PublishAt(p.Proc)
			if err != nil {
				return nil, fmt.Errorf("golden: %s: publish round %d: %w", s.Name, r, err)
			}
			w.linef("publish p=%s ev=%s", proto.ProcessID(p.Proc+1), ev.ID)
			published++
		}
		if s.Load.Rate > 0 && r >= s.Load.From && r <= s.Load.To {
			for k := 0; k < s.Load.Rate; k++ {
				i := (31*r + 17*k) % opts.N
				ev, err := c.PublishAt(i)
				if err != nil {
					return nil, fmt.Errorf("golden: %s: load publish round %d: %w", s.Name, r, err)
				}
				w.linef("publish p=%s ev=%s", proto.ProcessID(i+1), ev.ID)
				published++
			}
		}
		c.RunRound()
		writeDelivers(&w, col.drain(), s.PerProcess)
		if r%s.checkpointEvery() == 0 || r == s.Rounds {
			writeClusterCheckpoint(&w, c)
		}
	}
	w.linef("end rounds=%d published=%d", s.Rounds, published)
	return w.bytes(), nil
}

func recordBus(s Scenario) ([]byte, error) {
	cfg := s.Bus.Cfg
	col := &collector{}
	cfg.Tracer = col
	bus, err := pubsub.NewBus(cfg)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: %w", s.Name, err)
	}
	pop, err := s.Bus.Workload.Deploy(bus, nil)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: deploy: %w", s.Name, err)
	}

	var w tapeWriter
	w.linef("golden-tape v%d", Version)
	w.linef("scenario %s", s.Name)
	w.linef("kind bus")
	w.linef("config topics=%d subs=%d zipf=%g wseed=%d seed=%d eps=%g rounds=%d",
		s.Bus.Workload.Topics, s.Bus.Workload.Subscribers, s.Bus.Workload.S,
		s.Bus.Workload.Seed, cfg.Seed, cfg.Epsilon, s.Rounds)
	if s.Knobs != "" {
		w.linef("knobs %s", s.Knobs)
	}
	setup := col.drain()
	w.linef("setup joins=%d", countKind(setup, trace.KindJoinSent))

	var churnSubs []*pubsub.Subscription
	churnSeq := 0
	published := 0
	for r := 1; r <= s.Rounds; r++ {
		w.linef("round %d", r)
		for _, p := range s.Bus.Publishes {
			if p.Round != r {
				continue
			}
			ev, err := pop.PublishAt(p.Rank, nil)
			if err != nil {
				return nil, fmt.Errorf("golden: %s: publish round %d: %w", s.Name, r, err)
			}
			w.linef("publish t=%s ev=%s", pubsub.TopicName(p.Rank), ev.ID)
			published++
		}
		for _, ph := range s.Bus.Churn {
			if r < ph.From || r > ph.To {
				continue
			}
			for k := 0; k < ph.Joins; k++ {
				churnSeq++
				cl := bus.NewClient(fmt.Sprintf("churn%05d", churnSeq))
				sub, err := cl.Subscribe(pubsub.TopicName(ph.TopicRank), nil)
				if err != nil {
					return nil, fmt.Errorf("golden: %s: churn join round %d: %w", s.Name, r, err)
				}
				churnSubs = append(churnSubs, sub)
			}
			refused := 0
			for k := 0; k < ph.Leaves && len(churnSubs) > 0; k++ {
				if err := churnSubs[0].Cancel(); err != nil {
					if errors.Is(err, membership.ErrUnsubRefused) {
						// §3.4 back-pressure: the unSubs buffer is full.
						// Leave the subscription queued and retry next round.
						refused++
						break
					}
					return nil, fmt.Errorf("golden: %s: churn leave round %d: %w", s.Name, r, err)
				}
				churnSubs = churnSubs[1:]
			}
			if refused > 0 {
				w.linef("cancel-refused n=%d", refused)
			}
		}
		bus.Step()
		evs := col.drain()
		writeBusMembership(&w, evs)
		writeDelivers(&w, evs, s.PerProcess)
		if r%s.checkpointEvery() == 0 || r == s.Rounds {
			writeBusCheckpoint(&w, bus)
		}
	}
	w.linef("end rounds=%d published=%d", s.Rounds, published)
	return w.bytes(), nil
}

func countKind(evs []trace.Event, k trace.Kind) int {
	n := 0
	for _, e := range evs {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// writeDelivers serializes one round's deliveries canonically: either one
// sorted line per (process, event) or an aggregated per-event count —
// both forms are invariant under the executors' intra-round ordering.
func writeDelivers(w *tapeWriter, evs []trace.Event, perProcess bool) {
	if perProcess {
		var ds []trace.Event
		for _, e := range evs {
			if e.Kind == trace.KindDeliver {
				ds = append(ds, e)
			}
		}
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].Node != ds[j].Node {
				return ds[i].Node < ds[j].Node
			}
			return ds[i].EventID.Less(ds[j].EventID)
		})
		for _, e := range ds {
			w.linef("deliver p=%s ev=%s", e.Node, e.EventID)
		}
		return
	}
	counts := map[proto.EventID]int{}
	for _, e := range evs {
		if e.Kind == trace.KindDeliver {
			counts[e.EventID]++
		}
	}
	ids := make([]proto.EventID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		w.linef("delivered ev=%s n=%d", id, counts[id])
	}
}

// writeBusMembership serializes one round's joins and leaves, sorted.
func writeBusMembership(w *tapeWriter, evs []trace.Event) {
	var joins, leaves []proto.ProcessID
	for _, e := range evs {
		switch e.Kind {
		case trace.KindJoinSent:
			joins = append(joins, e.Node)
		case trace.KindLeave:
			leaves = append(leaves, e.Node)
		}
	}
	sort.Slice(joins, func(i, j int) bool { return joins[i] < joins[j] })
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	for _, p := range joins {
		w.linef("join p=%s", p)
	}
	for _, p := range leaves {
		w.linef("leave p=%s", p)
	}
}

func writeNetStats(w *tapeWriter, n sim.NetStats) {
	w.linef("net sent=%d delivered=%d late=%d dropped=%d crashed=%d unknown=%d partition=%d inflight=%d truncated=%d",
		n.Sent, n.Delivered, n.DeliveredLate, n.Dropped, n.ToCrashed,
		n.UnknownDest, n.DroppedInPartition, n.InFlight, n.TruncatedChase)
}

func writeClusterCheckpoint(w *tapeWriter, c *sim.Cluster) {
	writeNetStats(w, c.NetStats())
	var es core.Stats
	var ps pbcast.Stats
	engines, nodes := 0, 0
	for i := 0; i < c.N(); i++ {
		switch p := c.Process(i).(type) {
		case *core.Engine:
			s := p.Stats()
			es.GossipsSent += s.GossipsSent
			es.GossipsReceived += s.GossipsReceived
			es.EventsPublished += s.EventsPublished
			es.EventsDelivered += s.EventsDelivered
			es.DuplicatesDropped += s.DuplicatesDropped
			es.AssumedFromDigest += s.AssumedFromDigest
			es.RetransmitRequests += s.RetransmitRequests
			es.RetransmitServed += s.RetransmitServed
			es.RetransmitMisses += s.RetransmitMisses
			es.RetransmitTimeouts += s.RetransmitTimeouts
			es.EventsOverflowed += s.EventsOverflowed
			engines++
		case *pbcast.Node:
			s := p.Stats()
			ps.GossipsSent += s.GossipsSent
			ps.GossipsReceived += s.GossipsReceived
			ps.MessagesPublished += s.MessagesPublished
			ps.MessagesDelivered += s.MessagesDelivered
			ps.DuplicatesDropped += s.DuplicatesDropped
			ps.Solicitations += s.Solicitations
			ps.Retransmissions += s.Retransmissions
			ps.HopLimitRefusals += s.HopLimitRefusals
			nodes++
		}
	}
	if engines > 0 {
		w.linef("engines sent=%d recv=%d pub=%d delivered=%d dup=%d assumed=%d rtreq=%d rtserved=%d rtmiss=%d rttimeout=%d overflow=%d",
			es.GossipsSent, es.GossipsReceived, es.EventsPublished,
			es.EventsDelivered, es.DuplicatesDropped, es.AssumedFromDigest,
			es.RetransmitRequests, es.RetransmitServed, es.RetransmitMisses,
			es.RetransmitTimeouts, es.EventsOverflowed)
	}
	if nodes > 0 {
		w.linef("pnodes sent=%d recv=%d pub=%d delivered=%d dup=%d solicit=%d retrans=%d hoplimit=%d",
			ps.GossipsSent, ps.GossipsReceived, ps.MessagesPublished,
			ps.MessagesDelivered, ps.DuplicatesDropped, ps.Solicitations,
			ps.Retransmissions, ps.HopLimitRefusals)
	}
	writeViews(w, c.Graph())
}

// writeViews summarizes the membership graph as (alive procs, total view
// edges, FNV-1a over the pid-sorted adjacency) — a full-view fingerprint
// in one line.
func writeViews(w *tapeWriter, g membership.Graph) {
	pids := make([]proto.ProcessID, 0, len(g))
	for pid := range g {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	h := fnv.New64a()
	var buf [8]byte
	edges := 0
	for _, pid := range pids {
		putUint64(&buf, uint64(pid))
		h.Write(buf[:])
		for _, q := range g[pid] {
			putUint64(&buf, uint64(q))
			h.Write(buf[:])
		}
		edges += len(g[pid])
	}
	w.linef("views procs=%d edges=%d hash=%016x", len(pids), edges, h.Sum64())
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

func writeBusCheckpoint(w *tapeWriter, bus *pubsub.Bus) {
	writeNetStats(w, bus.TotalNetStats())
	topics := bus.Topics()
	parts := make([]string, 0, len(topics))
	for _, t := range topics {
		parts = append(parts, fmt.Sprintf("%s=%d", t, bus.TopicSize(t)))
	}
	w.linef("topics %s", strings.Join(parts, " "))
}
