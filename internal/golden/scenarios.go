package golden

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pbcast"
	"repro/internal/pubsub"
	"repro/internal/sim"
)

// Scenarios returns the registry of named adversarial workloads, in tape
// order. Each call builds the slice fresh so callers can mutate their copy
// (the golden tests override RunConfig per variant).
//
// The scenarios are deliberately adversarial: each one leans on a failure
// mode the paper analyzes — churn, skewed popularity, partitions, buffer
// saturation, loss-driven retransmission, sub-round latency, unsynchronized
// periods — so the tapes pin exactly the behavior unit tests cannot.
// docs/SCENARIOS.md documents each one's topology, fault schedule, and
// expected qualitative outcome.
func Scenarios() []Scenario {
	return []Scenario{
		wanPartitionHeal(),
		bufferPressure(),
		retransmitStorm(),
		eventMsDelay(),
		asyncWavefront(),
		bimodalBaseline(),
		flashCrowdChurn(),
		hotspotZipf(),
		millionLiteChurn(),
	}
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names lists the registered scenario names, in tape order.
func Names() []string {
	ss := Scenarios()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// wanPartitionHeal cuts the WAN link of a two-datacenter topology for
// rounds [8,16) while notifications publish on both sides, then heals.
// Cross-side dissemination stalls during the cut and recovers through the
// retransmission pull once digests circulate again. Rounds-granular and
// synchronous, so the tape must reproduce byte-for-byte on both clocks.
func wanPartitionHeal() Scenario {
	cfg := core.DefaultConfig()
	cfg.Retransmit = true
	cfg.MaxRetransmitPerGossip = 8
	return Scenario{
		Name: "wan-partition-heal",
		Doc:  "two-cluster WAN cut rounds 8-16 with mid-partition publishes, retransmit-driven heal",
		Kind: KindCluster,
		Opts: sim.Options{
			N:       200,
			Seed:    42,
			Lpbcast: cfg,
			Epsilon: 0.05,
			Tau:     0.01,
			Horizon: 28,
			Topology: fault.TwoCluster{
				Split: 100,
				Local: fault.LinkProfile{Epsilon: -1},
				WAN:   fault.LinkProfile{Epsilon: 0.15, MinDelay: 1, MaxDelay: 3},
			},
			Partitions: []fault.Partition{{From: 8, To: 16, Classes: []fault.LinkClass{fault.LinkWAN}}},
		},
		Publishes: []Publish{
			{Round: 2, Proc: 10}, {Round: 4, Proc: 150},
			{Round: 10, Proc: 10}, {Round: 12, Proc: 150},
			{Round: 18, Proc: 60}, {Round: 20, Proc: 130},
		},
		Rounds:     28,
		BothClocks: true,
		Knobs:      "topo=two-cluster wan-eps=0.15 wan-delay=1..3 partition=wan@8..16 retransmit=on",
	}
}

// bufferPressure saturates the forwarding buffer: |events|m = 1 under a
// sustained publish load, the regime of the paper's Fig. 5 left edge.
// EventsOverflowed climbs and delivery ratios collapse below the
// well-provisioned baseline.
func bufferPressure() Scenario {
	cfg := core.DefaultConfig()
	cfg.MaxEvents = 1
	return Scenario{
		Name: "buffer-pressure",
		Doc:  "|events|m=1 under 3 publishes/round for 10 rounds: overflow-driven loss",
		Kind: KindCluster,
		Opts: sim.Options{
			N:       150,
			Seed:    7,
			Lpbcast: cfg,
			Epsilon: 0.05,
			Horizon: 30,
		},
		Load:   Load{From: 1, To: 10, Rate: 3},
		Rounds: 30,
		Knobs:  "maxevents=1 load=3x10",
	}
}

// retransmitStorm runs the gossip-pull path under ε=0.35 loss with an
// aggressive 2-round re-request timeout: requests, serves, misses, and
// timeout re-arms all fire heavily. RetransmitTimeout counts in "now"
// units, so this scenario is meaningful on the round clock only.
func retransmitStorm() Scenario {
	cfg := core.DefaultConfig()
	cfg.Retransmit = true
	cfg.RetransmitTimeout = 2
	cfg.MaxRetransmitPerGossip = 8
	return Scenario{
		Name: "retransmit-storm",
		Doc:  "eps=0.35 with 2-round retransmit timeout: heavy request/serve/re-request traffic",
		Kind: KindCluster,
		Opts: sim.Options{
			N:       120,
			Seed:    17,
			Lpbcast: cfg,
			Epsilon: 0.35,
			Horizon: 30,
		},
		Publishes: []Publish{
			{Round: 1, Proc: 3}, {Round: 2, Proc: 40}, {Round: 3, Proc: 77},
			{Round: 4, Proc: 14}, {Round: 5, Proc: 91}, {Round: 6, Proc: 58},
		},
		Rounds: 30,
		Knobs:  "eps=0.35 retransmit=on timeout=2 maxper=8",
	}
}

// eventMsDelay exercises the event clock's millisecond time base: a
// 10-250 ms uniform delay against a 100 ms gossip period, so messages
// straddle period boundaries and arrive between ticks — unreachable on
// the round clock by construction.
func eventMsDelay() Scenario {
	return Scenario{
		Name: "event-ms-delay",
		Doc:  "event clock, 10-250ms uniform delay vs 100ms period: cross-period arrivals",
		Kind: KindCluster,
		Opts: sim.Options{
			N:       100,
			Seed:    23,
			Lpbcast: core.DefaultConfig(),
			Epsilon: 0.05,
			Horizon: 24,
			Delay:   fault.Millis{Model: fault.UniformDelay{Min: 10, Max: 250}},
			RunConfig: sim.RunConfig{
				Clock:    sim.ClockEvent,
				PeriodMs: 100,
			},
		},
		Publishes: []Publish{
			{Round: 1, Proc: 5}, {Round: 2, Proc: 31}, {Round: 3, Proc: 67},
			{Round: 4, Proc: 12}, {Round: 5, Proc: 88}, {Round: 6, Proc: 49},
			{Round: 7, Proc: 73}, {Round: 8, Proc: 20},
		},
		Rounds: 24,
		Knobs:  "clock=event period=100ms delay=10..250ms",
	}
}

// asyncWavefront runs the unsynchronized-period regime (§3.2) with
// crashes: ticks happen in a random per-period order and fresh
// information forwards within the same period (≈2 hops/period).
func asyncWavefront() Scenario {
	return Scenario{
		Name: "async-wavefront",
		Doc:  "unsynchronized gossip periods with crashes: same-period forwarding wavefront",
		Kind: KindCluster,
		Opts: sim.Options{
			N:       100,
			Seed:    29,
			Lpbcast: core.DefaultConfig(),
			Epsilon: 0.05,
			Tau:     0.01,
			Horizon: 24,
			Async:   true,
		},
		Publishes: []Publish{
			{Round: 1, Proc: 2}, {Round: 2, Proc: 50}, {Round: 3, Proc: 97},
			{Round: 4, Proc: 33}, {Round: 5, Proc: 71},
		},
		Rounds: 24,
		Knobs:  "async=on",
	}
}

// bimodalBaseline pins the §6.2 comparison protocol: Bimodal Multicast
// over the lpbcast membership layer, with a 50%-reliable first-phase
// multicast. Small enough to tape every delivery individually.
func bimodalBaseline() Scenario {
	return Scenario{
		Name: "bimodal-baseline",
		Doc:  "pbcast over partial views, 50% first-phase multicast, per-delivery tape",
		Kind: KindCluster,
		Opts: sim.Options{
			N:                  60,
			Seed:               31,
			Protocol:           sim.PbcastPartial,
			Pbcast:             pbcast.DefaultConfig(),
			Epsilon:            0.05,
			Horizon:            20,
			FirstPhaseDelivery: 0.5,
		},
		Publishes:  []Publish{{Round: 1, Proc: 0}, {Round: 3, Proc: 20}, {Round: 5, Proc: 45}},
		Rounds:     20,
		PerProcess: true,
		Knobs:      "proto=pbcast/partial firstphase=0.5",
	}
}

// flashCrowdChurn floods one topic with a burst of subscribers (rounds
// 8-12), then drains them (rounds 20-24): the flash-crowd shape. View
// sizes and delivery counts on the hot topic swell and settle back.
func flashCrowdChurn() Scenario {
	return Scenario{
		Name: "flash-crowd-churn",
		Doc:  "40-subscriber flash crowd onto one topic, then mass leave",
		Kind: KindBus,
		Bus: BusSetup{
			Cfg:      pubsub.Config{Seed: 11, Epsilon: 0.05},
			Workload: pubsub.Workload{Topics: 3, Subscribers: 30, S: 1.0, Seed: 7},
			Publishes: []BusPublish{
				{Round: 2, Rank: 0}, {Round: 6, Rank: 1}, {Round: 10, Rank: 0},
				{Round: 14, Rank: 0}, {Round: 18, Rank: 2}, {Round: 26, Rank: 0},
			},
			Churn: []ChurnPhase{
				{From: 8, To: 12, Joins: 8, TopicRank: 0},
				{From: 20, To: 24, Leaves: 8},
			},
		},
		Rounds: 30,
		Knobs:  "flash=8x5@t000 drain=8x5",
	}
}

// hotspotZipf deploys a Zipf(1.2) popularity skew over 12 topics and
// publishes into the hot one every round: the multi-tenant hotspot the
// paper aims lpbcast at (§1), with the tail topics nearly idle.
func hotspotZipf() Scenario {
	return Scenario{
		Name: "hotspot-zipf",
		Doc:  "Zipf(1.2) over 12 topics, sustained hot-topic publishing",
		Kind: KindBus,
		Bus: BusSetup{
			Cfg:      pubsub.Config{Seed: 13, Epsilon: 0.05},
			Workload: pubsub.Workload{Topics: 12, Subscribers: 150, S: 1.2, Seed: 5},
			Publishes: []BusPublish{
				{Round: 1, Rank: 0}, {Round: 2, Rank: 0}, {Round: 3, Rank: 0},
				{Round: 4, Rank: 0}, {Round: 5, Rank: 0}, {Round: 6, Rank: 0},
				{Round: 7, Rank: 0}, {Round: 8, Rank: 0}, {Round: 9, Rank: 0},
				{Round: 10, Rank: 0}, {Round: 6, Rank: 5}, {Round: 12, Rank: 11},
			},
		},
		Rounds: 25,
		Knobs:  "zipf=1.2 hot=t000x10",
	}
}

// millionLiteChurn cycles steady join+leave churn so member pids recycle
// through the dense index continuously — a scaled-down probe of the
// million-process index-churn path (PR 9) under live pub/sub.
func millionLiteChurn() Scenario {
	return Scenario{
		Name: "million-lite-churn",
		Doc:  "steady 3-join/3-leave churn cycling dense-index slot recycling",
		Kind: KindBus,
		Bus: BusSetup{
			Cfg:      pubsub.Config{Seed: 3, Epsilon: 0.05},
			Workload: pubsub.Workload{Topics: 4, Subscribers: 40, S: 0.8, Seed: 3},
			Publishes: []BusPublish{
				{Round: 5, Rank: 1}, {Round: 15, Rank: 1}, {Round: 25, Rank: 1},
			},
			Churn: []ChurnPhase{
				{From: 1, To: 30, Joins: 3, TopicRank: 1, Leaves: 3},
			},
		},
		Rounds: 32,
		Knobs:  "churn=3join/3leave@t001x30",
	}
}
