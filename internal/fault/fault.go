// Package fault provides the failure models of the paper's system model
// (§4.1): stochastically independent message loss bounded by ε, and
// process crashes bounded by a fraction τ of the system per run. Burst
// loss and scheduled crashes extend the model for the WAN example and the
// failure-injection tests.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/idmap"
	"repro/internal/proto"
	"repro/internal/rng"
)

// LossModel decides, per message, whether the network drops it.
type LossModel interface {
	// Drop reports whether a message from src to dst at time now is lost.
	Drop(src, dst proto.ProcessID, now uint64) bool
}

// NoLoss never drops messages.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(_, _ proto.ProcessID, _ uint64) bool { return false }

// Bernoulli drops each message independently with probability Epsilon —
// the paper's ε (0.05 in all experiments).
type Bernoulli struct {
	Epsilon float64
	Rand    *rng.Source
}

// NewBernoulli creates a Bernoulli loss model.
func NewBernoulli(epsilon float64, r *rng.Source) *Bernoulli {
	return &Bernoulli{Epsilon: epsilon, Rand: r}
}

// Drop implements LossModel.
func (b *Bernoulli) Drop(_, _ proto.ProcessID, _ uint64) bool {
	return b.Rand.Bool(b.Epsilon)
}

// Burst alternates between a good state with loss pGood and a bad state
// with loss pBad (a two-state Gilbert–Elliott channel), transitioning with
// the given per-message probabilities. It models correlated WAN loss.
type Burst struct {
	pGood, pBad           float64
	toBadProb, toGoodProb float64
	bad                   bool
	rand                  *rng.Source
}

// NewBurst creates a Gilbert–Elliott loss model starting in the good state.
func NewBurst(pGood, pBad, toBad, toGood float64, r *rng.Source) *Burst {
	return &Burst{pGood: pGood, pBad: pBad, toBadProb: toBad, toGoodProb: toGood, rand: r}
}

// Drop implements LossModel.
func (b *Burst) Drop(_, _ proto.ProcessID, _ uint64) bool {
	if b.bad {
		if b.rand.Bool(b.toGoodProb) {
			b.bad = false
		}
	} else if b.rand.Bool(b.toBadProb) {
		b.bad = true
	}
	if b.bad {
		return b.rand.Bool(b.pBad)
	}
	return b.rand.Bool(b.pGood)
}

// InBadState reports whether the channel is currently bursting.
func (b *Burst) InBadState() bool { return b.bad }

// CrashSchedule decides which processes are crashed at a given time. It
// is keyed on dense indices from an idmap.Table, so the per-message
// Crashed probe in the simulator fabric is two array loads rather than a
// map lookup. Only processes with a scheduled crash occupy the table —
// everybody else misses the forward array and is alive forever.
type CrashSchedule struct {
	idx   idmap.Table
	times []uint64 // times[ix] = earliest scheduled crash for idx.ID(ix)
}

// NewCrashSchedule creates an empty schedule (nobody ever crashes).
func NewCrashSchedule() *CrashSchedule {
	return &CrashSchedule{}
}

// CrashAt schedules p to crash at time t (inclusive). Crashed processes do
// not recover (§4.1: "We do not take into account the recovery of crashed
// processes").
func (s *CrashSchedule) CrashAt(p proto.ProcessID, t uint64) {
	if ix, ok := s.idx.Lookup(p); ok {
		if t < s.times[ix] {
			s.times[ix] = t
		}
		return
	}
	ix := s.idx.Add(p)
	for uint64(len(s.times)) <= uint64(ix) {
		s.times = append(s.times, 0)
	}
	s.times[ix] = t
}

// Crashed reports whether p is crashed at time now.
func (s *CrashSchedule) Crashed(p proto.ProcessID, now uint64) bool {
	ix, ok := s.idx.Lookup(p)
	return ok && now >= s.times[ix]
}

// CrashedCount returns how many processes are crashed at time now.
func (s *CrashSchedule) CrashedCount(now uint64) int {
	n := 0
	for ix, t := range s.times {
		if now >= t && s.idx.ID(idmap.Index(ix)) != proto.NilProcess {
			n++
		}
	}
	return n
}

// CrashedProcesses returns the sorted ids crashed at time now.
func (s *CrashSchedule) CrashedProcesses(now uint64) []proto.ProcessID {
	var out []proto.ProcessID
	for ix, t := range s.times {
		if p := s.idx.ID(idmap.Index(ix)); p != proto.NilProcess && now >= t {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleCrashes schedules a fraction tau of processes (chosen uniformly
// without replacement) to crash at uniformly random times in [0, horizon].
// This realizes the paper's τ = f/n crash bound for a run of the given
// horizon. It returns the processes selected.
func (s *CrashSchedule) SampleCrashes(processes []proto.ProcessID, tau float64, horizon uint64, r *rng.Source) []proto.ProcessID {
	if tau <= 0 || len(processes) == 0 {
		return nil
	}
	f := int(tau * float64(len(processes)))
	if f <= 0 {
		return nil
	}
	idxs := r.Sample(len(processes), f)
	out := make([]proto.ProcessID, 0, len(idxs))
	for _, i := range idxs {
		p := processes[i]
		t := uint64(0)
		if horizon > 0 {
			t = uint64(r.Intn(int(horizon) + 1))
		}
		s.CrashAt(p, t)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String implements fmt.Stringer.
func (s *CrashSchedule) String() string {
	return fmt.Sprintf("crashes(%d scheduled)", s.idx.Len())
}
