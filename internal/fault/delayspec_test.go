package fault

import (
	"reflect"
	"testing"
)

func TestParseDelaySpec(t *testing.T) {
	cases := []struct {
		in   string
		want DelayModel // nil means the no-delay fast path
	}{
		{"", nil},
		{"  ", nil},
		{"0", nil},
		{"fixed:0", nil},
		{"ms:0", nil},
		{"ms:fixed:0", nil},
		{"2", FixedDelay{Rounds: 2}},
		{" 3 ", FixedDelay{Rounds: 3}},
		{"fixed:2", FixedDelay{Rounds: 2}},
		{"uniform:1-4", UniformDelay{Min: 1, Max: 4}},
		{"ms:fixed:30", Millis{Model: FixedDelay{Rounds: 30}}},
		{"ms:uniform:10-40", Millis{Model: UniformDelay{Min: 10, Max: 40}}},
		{"ms:30", Millis{Model: FixedDelay{Rounds: 30}}},
		// Range errors are deferred to Validate, not parse errors.
		{"-2", FixedDelay{Rounds: -2}},
		{"uniform:4-1", UniformDelay{Min: 4, Max: 1}},
	}
	for _, tc := range cases {
		got, err := ParseDelaySpec(tc.in)
		if err != nil {
			t.Errorf("ParseDelaySpec(%q): unexpected error %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseDelaySpec(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

func TestParseDelaySpecErrors(t *testing.T) {
	for _, in := range []string{
		"x",
		"fixed:",
		"fixed:a",
		"uniform:1",
		"uniform:a-b",
		"ms:",
		"ms:uniform:1",
		"rounds:2",
	} {
		if m, err := ParseDelaySpec(in); err == nil {
			t.Errorf("ParseDelaySpec(%q) = %#v, want error", in, m)
		}
	}
}

func TestUnitAndMillisValidate(t *testing.T) {
	if u := Unit(FixedDelay{Rounds: 2}); u != UnitRounds {
		t.Fatalf("Unit(FixedDelay) = %v, want rounds", u)
	}
	if u := Unit(Millis{Model: FixedDelay{Rounds: 2}}); u != UnitMillis {
		t.Fatalf("Unit(Millis) = %v, want ms", u)
	}
	if u := Unit(nil); u != UnitRounds {
		t.Fatalf("Unit(nil) = %v, want rounds", u)
	}
	if err := (Millis{}).Validate(); err == nil {
		t.Fatal("Millis{} should fail validation")
	}
	if err := (Millis{Model: Millis{Model: FixedDelay{Rounds: 1}}}).Validate(); err == nil {
		t.Fatal("nested Millis should fail validation")
	}
	if err := (Millis{Model: FixedDelay{Rounds: -1}}).Validate(); err == nil {
		t.Fatal("Millis should surface the wrapped model's validation error")
	}
	if err := (Millis{Model: UniformDelay{Min: 10, Max: 40}}).Validate(); err != nil {
		t.Fatalf("valid Millis model rejected: %v", err)
	}
	m := Millis{Model: FixedDelay{Rounds: 30}}
	if got := m.MaxDelay(); got != 30 {
		t.Fatalf("Millis.MaxDelay = %d, want 30", got)
	}
	if got := m.Delay(1, 2, 0, nil); got != 30 {
		t.Fatalf("Millis.Delay = %d, want 30", got)
	}
}
