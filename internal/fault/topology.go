package fault

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/rng"
)

// This file models the network's *structure*: a Topology assigns every
// directed (src, dst) link to a LinkClass, and each class carries a
// LinkProfile with its own loss probability and delivery-delay range. The
// paper's measurements (§3.2) ran over a real network where messages take
// time to arrive and links are not uniform; topologies make those scenario
// families (LAN/WAN splits, hierarchical sites, scheduled partitions over
// link classes) expressible in the simulator while the §4.1 model — flat
// Bernoulli ε — remains the default when no topology is configured.
//
// Topologies are pure, immutable descriptions: they own no RNG state, so a
// single value can be shared by every repeat of an experiment and by the
// sequential and sharded executors without breaking reproducibility. All
// stochastic draws they imply (loss, delay jitter) are performed by the
// caller against caller-owned streams.

// LinkClass identifies a category of links within a Topology. Classes are
// dense indices in [0, Classes()); the named constants document the
// conventional meaning the built-in topologies assign them.
type LinkClass int

const (
	// LinkLocal is intra-cluster traffic (same LAN).
	LinkLocal LinkClass = iota
	// LinkWAN is inter-cluster traffic (TwoCluster's wide-area link, or
	// Hierarchical's links between clusters of the same region).
	LinkWAN
	// LinkGlobal is inter-region traffic in Hierarchical topologies.
	LinkGlobal
)

// String implements fmt.Stringer.
func (c LinkClass) String() string {
	switch c {
	case LinkLocal:
		return "local"
	case LinkWAN:
		return "wan"
	case LinkGlobal:
		return "global"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// LinkProfile describes one link class: its loss probability and its
// delivery delay, in whole gossip rounds (periods). A message sent at
// round r over a link with delay d arrives at the top of round r+d; delay
// 0 keeps the §5.1 same-round semantics.
type LinkProfile struct {
	// Epsilon is the per-message loss probability on this class. A
	// negative value means "inherit the experiment's global ε".
	Epsilon float64
	// MinDelay and MaxDelay bound the delivery delay in rounds; the delay
	// of each message is drawn uniformly from [MinDelay, MaxDelay]. Equal
	// bounds make the delay deterministic (and draw-free).
	MinDelay, MaxDelay int
}

// Validate reports profile errors.
func (p LinkProfile) Validate() error {
	if p.Epsilon >= 1 {
		return fmt.Errorf("fault: link epsilon %v out of [0,1) (negative inherits)", p.Epsilon)
	}
	if p.MinDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("fault: negative link delay [%d,%d]", p.MinDelay, p.MaxDelay)
	}
	if p.MinDelay > p.MaxDelay {
		return fmt.Errorf("fault: link delay bounds inverted [%d,%d]", p.MinDelay, p.MaxDelay)
	}
	return nil
}

// Topology maps directed links to classes and classes to profiles.
// Implementations must be pure: Class and Profile may not mutate state or
// draw randomness, so one topology value is safely shared across repeats,
// executors, and goroutines.
type Topology interface {
	// Class returns the link class of traffic from src to dst.
	Class(src, dst proto.ProcessID) LinkClass
	// Profile returns the loss/delay profile of a class.
	Profile(c LinkClass) LinkProfile
	// Classes returns the number of classes; Class results are < Classes.
	Classes() int
	// Validate reports configuration errors.
	Validate() error
}

// MaxLinkDelay returns the largest MaxDelay over the topology's classes —
// the bound the simulator uses to size its in-flight ring.
func MaxLinkDelay(t Topology) int {
	max := 0
	for c := 0; c < t.Classes(); c++ {
		if d := t.Profile(LinkClass(c)).MaxDelay; d > max {
			max = d
		}
	}
	return max
}

// Uniform is the degenerate topology: every link is the same class. It
// exists so "one profile for the whole network" composes with partitions
// and the topology-backed delay model without a special case.
type Uniform struct {
	Link LinkProfile
}

// Class implements Topology.
func (Uniform) Class(_, _ proto.ProcessID) LinkClass { return LinkLocal }

// Profile implements Topology.
func (u Uniform) Profile(LinkClass) LinkProfile { return u.Link }

// Classes implements Topology.
func (Uniform) Classes() int { return 1 }

// Validate implements Topology.
func (u Uniform) Validate() error { return u.Link.Validate() }

// TwoCluster splits the process space into two LAN clusters joined by a
// WAN link: processes with id <= Split form cluster A, the rest cluster
// B. Intra-cluster traffic is LinkLocal, inter-cluster traffic LinkWAN —
// the classic two-datacenter shape of the paper's wide-area discussion.
type TwoCluster struct {
	// Split is the highest process id of cluster A. The simulator numbers
	// processes 1..N, so Split = N/2 halves the system.
	Split proto.ProcessID
	// Local is the profile of intra-cluster links, WAN of inter-cluster.
	Local, WAN LinkProfile
}

// Class implements Topology.
func (t TwoCluster) Class(src, dst proto.ProcessID) LinkClass {
	if (src <= t.Split) == (dst <= t.Split) {
		return LinkLocal
	}
	return LinkWAN
}

// Profile implements Topology.
func (t TwoCluster) Profile(c LinkClass) LinkProfile {
	if c == LinkLocal {
		return t.Local
	}
	return t.WAN
}

// Classes implements Topology.
func (TwoCluster) Classes() int { return 2 }

// Validate implements Topology.
func (t TwoCluster) Validate() error {
	if t.Split == 0 {
		return fmt.Errorf("fault: two-cluster topology needs Split >= 1")
	}
	if err := t.Local.Validate(); err != nil {
		return fmt.Errorf("fault: local profile: %w", err)
	}
	if err := t.WAN.Validate(); err != nil {
		return fmt.Errorf("fault: wan profile: %w", err)
	}
	return nil
}

// Hierarchical groups processes into clusters of ClusterSize and clusters
// into regions of ClustersPerRegion: same cluster → LinkLocal, same region
// → LinkWAN, different regions → LinkGlobal. It models the three-tier
// rack/site/continent structure of a planetary deployment.
type Hierarchical struct {
	// ClusterSize is the number of processes per cluster (>= 1).
	ClusterSize int
	// ClustersPerRegion is the number of clusters per region (>= 1).
	ClustersPerRegion int
	// Local, WAN, Global are the three tier profiles.
	Local, WAN, Global LinkProfile
}

// cluster returns the cluster index of a process (ids are 1-based).
func (t Hierarchical) cluster(p proto.ProcessID) int {
	return int(p-1) / t.ClusterSize
}

// Class implements Topology.
func (t Hierarchical) Class(src, dst proto.ProcessID) LinkClass {
	cs, cd := t.cluster(src), t.cluster(dst)
	if cs == cd {
		return LinkLocal
	}
	if cs/t.ClustersPerRegion == cd/t.ClustersPerRegion {
		return LinkWAN
	}
	return LinkGlobal
}

// Profile implements Topology.
func (t Hierarchical) Profile(c LinkClass) LinkProfile {
	switch c {
	case LinkLocal:
		return t.Local
	case LinkWAN:
		return t.WAN
	default:
		return t.Global
	}
}

// Classes implements Topology.
func (Hierarchical) Classes() int { return 3 }

// Validate implements Topology.
func (t Hierarchical) Validate() error {
	if t.ClusterSize < 1 {
		return fmt.Errorf("fault: hierarchical ClusterSize %d must be >= 1", t.ClusterSize)
	}
	if t.ClustersPerRegion < 1 {
		return fmt.Errorf("fault: hierarchical ClustersPerRegion %d must be >= 1", t.ClustersPerRegion)
	}
	for _, p := range []struct {
		name string
		pr   LinkProfile
	}{{"local", t.Local}, {"wan", t.WAN}, {"global", t.Global}} {
		if err := p.pr.Validate(); err != nil {
			return fmt.Errorf("fault: %s profile: %w", p.name, err)
		}
	}
	return nil
}

// TopologyLoss is a LossModel that draws each message's fate from its
// link-class profile, falling back to a global ε for classes that inherit
// (Epsilon < 0). It is the per-link generalization of Bernoulli.
type TopologyLoss struct {
	topo     Topology
	fallback float64
	rand     *rng.Source
}

// NewTopologyLoss creates a topology-driven loss model. fallback is the
// experiment's global ε, used by profiles with a negative Epsilon.
func NewTopologyLoss(t Topology, fallback float64, r *rng.Source) *TopologyLoss {
	return &TopologyLoss{topo: t, fallback: fallback, rand: r}
}

// Drop implements LossModel.
func (l *TopologyLoss) Drop(src, dst proto.ProcessID, _ uint64) bool {
	eps := l.topo.Profile(l.topo.Class(src, dst)).Epsilon
	if eps < 0 {
		eps = l.fallback
	}
	return l.rand.Bool(eps)
}
