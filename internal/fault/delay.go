package fault

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/rng"
)

// DelayModel decides, per message, how many whole rounds (gossip periods)
// a surviving message spends in flight before it is delivered: a message
// sent at round r with delay d arrives at the top of round r+d, and d = 0
// preserves the paper's §5.1 same-round semantics.
//
// Unlike LossModel implementations, delay models own no RNG: all draws go
// through the *rng.Source the caller passes in. That makes every model an
// immutable value that experiment runners can copy and share across
// repeats and executors — the draw stream (and with it reproducibility)
// belongs to the simulation, not to the model.
type DelayModel interface {
	// Delay returns the delivery delay in rounds for a message from src
	// to dst sent at round now, drawing any jitter from r.
	Delay(src, dst proto.ProcessID, now uint64, r *rng.Source) int
	// MaxDelay bounds every value Delay can return; the simulator uses it
	// to pre-size its in-flight ring.
	MaxDelay() int
	// Validate reports configuration errors.
	Validate() error
}

// delayBetween draws a uniform delay in [min, max], consuming a draw only
// when the bounds actually differ, so degenerate ranges stay draw-free.
func delayBetween(min, max int, r *rng.Source) int {
	if max <= min {
		return min
	}
	return min + r.Intn(max-min+1)
}

// NoDelay delivers every message in its send round — the zero model.
type NoDelay struct{}

// Delay implements DelayModel.
func (NoDelay) Delay(_, _ proto.ProcessID, _ uint64, _ *rng.Source) int { return 0 }

// MaxDelay implements DelayModel.
func (NoDelay) MaxDelay() int { return 0 }

// Validate implements DelayModel.
func (NoDelay) Validate() error { return nil }

// FixedDelay delays every message by the same number of rounds.
type FixedDelay struct {
	Rounds int
}

// Delay implements DelayModel.
func (d FixedDelay) Delay(_, _ proto.ProcessID, _ uint64, _ *rng.Source) int { return d.Rounds }

// MaxDelay implements DelayModel.
func (d FixedDelay) MaxDelay() int { return d.Rounds }

// Validate implements DelayModel.
func (d FixedDelay) Validate() error {
	if d.Rounds < 0 {
		return fmt.Errorf("fault: negative fixed delay %d", d.Rounds)
	}
	return nil
}

// UniformDelay draws each message's delay independently and uniformly from
// [Min, Max] rounds — link-independent jitter, the delay analog of
// Bernoulli loss.
type UniformDelay struct {
	Min, Max int
}

// Delay implements DelayModel.
func (d UniformDelay) Delay(_, _ proto.ProcessID, _ uint64, r *rng.Source) int {
	return delayBetween(d.Min, d.Max, r)
}

// MaxDelay implements DelayModel.
func (d UniformDelay) MaxDelay() int { return d.Max }

// Validate implements DelayModel.
func (d UniformDelay) Validate() error {
	if d.Min < 0 || d.Max < 0 {
		return fmt.Errorf("fault: negative uniform delay [%d,%d]", d.Min, d.Max)
	}
	if d.Min > d.Max {
		return fmt.Errorf("fault: uniform delay bounds inverted [%d,%d]", d.Min, d.Max)
	}
	return nil
}

// TopologyDelay draws each message's delay from its link class: uniformly
// from the class profile's [MinDelay, MaxDelay]. This is the model a
// simulator derives automatically when a Topology is configured.
type TopologyDelay struct {
	T Topology
}

// Delay implements DelayModel.
func (d TopologyDelay) Delay(src, dst proto.ProcessID, _ uint64, r *rng.Source) int {
	p := d.T.Profile(d.T.Class(src, dst))
	return delayBetween(p.MinDelay, p.MaxDelay, r)
}

// MaxDelay implements DelayModel.
func (d TopologyDelay) MaxDelay() int { return MaxLinkDelay(d.T) }

// Validate implements DelayModel.
func (d TopologyDelay) Validate() error {
	if d.T == nil {
		return fmt.Errorf("fault: topology delay without a topology")
	}
	return d.T.Validate()
}
