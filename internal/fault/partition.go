package fault

import (
	"fmt"
	"sort"
)

// Partition is a scheduled network partition: during the half-open round
// window [From, To) every link of the named classes is cut — messages sent
// across a cut link are swallowed by the network — and at round To the
// partition heals and traffic flows again. Combined with a Topology this
// expresses the classic transient-split scenarios (a WAN link going dark
// between two datacenters, a region dropping off the backbone); without a
// topology every link is LinkLocal and a partition silences the whole
// network for its window.
//
// Partitions cut at *send time*: a message enters the network when it is
// sent, so a message sent over a cut link is dropped even if its delivery
// delay would have landed it after the heal, and a delayed message sent
// before the window arrives normally even if it lands inside it.
type Partition struct {
	// From and To bound the cut window in rounds: [From, To).
	From, To uint64
	// Classes are the link classes cut; empty means every class.
	Classes []LinkClass
}

// Cuts reports whether the partition severs links of the given class at
// round now.
func (p Partition) Cuts(class LinkClass, now uint64) bool {
	if now < p.From || now >= p.To {
		return false
	}
	if len(p.Classes) == 0 {
		return true
	}
	for _, c := range p.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (p Partition) String() string {
	if len(p.Classes) == 0 {
		return fmt.Sprintf("partition[%d,%d)", p.From, p.To)
	}
	return fmt.Sprintf("partition[%d,%d)%v", p.From, p.To, p.Classes)
}

// CutLink reports whether any partition in the schedule severs links of
// the given class at round now.
func CutLink(parts []Partition, class LinkClass, now uint64) bool {
	for _, p := range parts {
		if p.Cuts(class, now) {
			return true
		}
	}
	return false
}

// ValidatePartitions checks a partition schedule against the number of
// link classes of the topology in force and the experiment horizon (0
// means unbounded): windows must be non-empty, start inside the horizon,
// reference existing classes, and — per class — not overlap, so that
// "which partition cut this message" always has one answer.
func ValidatePartitions(parts []Partition, classes int, horizon uint64) error {
	type window struct{ from, to uint64 }
	perClass := make([][]window, classes)
	for i, p := range parts {
		if p.From >= p.To {
			return fmt.Errorf("fault: partition %d: empty window [%d,%d)", i, p.From, p.To)
		}
		if horizon > 0 && p.From >= horizon {
			return fmt.Errorf("fault: partition %d: window [%d,%d) starts outside the horizon %d", i, p.From, p.To, horizon)
		}
		cut := p.Classes
		if len(cut) == 0 {
			cut = make([]LinkClass, classes)
			for c := range cut {
				cut[c] = LinkClass(c)
			}
		}
		seen := make(map[LinkClass]bool, len(cut))
		for _, c := range cut {
			if c < 0 || int(c) >= classes {
				return fmt.Errorf("fault: partition %d: link class %d outside [0,%d)", i, int(c), classes)
			}
			if seen[c] {
				return fmt.Errorf("fault: partition %d: duplicate link class %v", i, c)
			}
			seen[c] = true
			perClass[c] = append(perClass[c], window{p.From, p.To})
		}
	}
	for c, ws := range perClass {
		sort.Slice(ws, func(i, j int) bool { return ws[i].from < ws[j].from })
		for i := 1; i < len(ws); i++ {
			if ws[i].from < ws[i-1].to {
				return fmt.Errorf("fault: overlapping partitions on class %v: [%d,%d) and [%d,%d)",
					LinkClass(c), ws[i-1].from, ws[i-1].to, ws[i].from, ws[i].to)
			}
		}
	}
	return nil
}
