package fault

import (
	"math"
	"testing"

	"repro/internal/proto"
	"repro/internal/rng"
)

func TestNoLoss(t *testing.T) {
	t.Parallel()
	var m NoLoss
	for i := 0; i < 100; i++ {
		if m.Drop(1, 2, uint64(i)) {
			t.Fatal("NoLoss dropped a message")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	t.Parallel()
	m := NewBernoulli(0.05, rng.New(1))
	const draws = 200000
	drops := 0
	for i := 0; i < draws; i++ {
		if m.Drop(1, 2, uint64(i)) {
			drops++
		}
	}
	got := float64(drops) / draws
	if math.Abs(got-0.05) > 0.005 {
		t.Errorf("drop rate = %v, want ≈0.05", got)
	}
}

func TestBernoulliZeroAndOne(t *testing.T) {
	t.Parallel()
	never := NewBernoulli(0, rng.New(1))
	always := NewBernoulli(1, rng.New(2))
	for i := 0; i < 100; i++ {
		if never.Drop(1, 2, 0) {
			t.Fatal("epsilon=0 dropped")
		}
		if !always.Drop(1, 2, 0) {
			t.Fatal("epsilon=1 delivered")
		}
	}
}

func TestBurstTransitionsAndRates(t *testing.T) {
	t.Parallel()
	m := NewBurst(0.01, 0.9, 0.02, 0.2, rng.New(3))
	const draws = 300000
	drops := 0
	sawBad := false
	for i := 0; i < draws; i++ {
		if m.Drop(1, 2, uint64(i)) {
			drops++
		}
		if m.InBadState() {
			sawBad = true
		}
	}
	if !sawBad {
		t.Fatal("burst model never entered bad state")
	}
	got := float64(drops) / draws
	// Stationary bad fraction = toBad/(toBad+toGood) ≈ 0.0909; expected
	// loss ≈ 0.0909*0.9 + 0.909*0.01 ≈ 0.0909.
	if got < 0.05 || got > 0.15 {
		t.Errorf("burst drop rate = %v, want within [0.05, 0.15]", got)
	}
}

func TestCrashScheduleBasics(t *testing.T) {
	t.Parallel()
	s := NewCrashSchedule()
	if s.Crashed(1, 100) {
		t.Fatal("empty schedule crashed a process")
	}
	s.CrashAt(1, 10)
	if s.Crashed(1, 9) {
		t.Fatal("crashed before scheduled time")
	}
	if !s.Crashed(1, 10) || !s.Crashed(1, 11) {
		t.Fatal("not crashed at/after scheduled time")
	}
	// No recovery: earlier re-schedule wins, later is ignored.
	s.CrashAt(1, 5)
	if !s.Crashed(1, 5) {
		t.Fatal("earlier crash time not kept")
	}
	s.CrashAt(1, 50)
	if !s.Crashed(1, 5) {
		t.Fatal("later crash time overwrote earlier")
	}
}

func TestCrashedCountAndList(t *testing.T) {
	t.Parallel()
	s := NewCrashSchedule()
	s.CrashAt(3, 10)
	s.CrashAt(1, 20)
	if s.CrashedCount(15) != 1 {
		t.Fatalf("count at 15 = %d", s.CrashedCount(15))
	}
	got := s.CrashedProcesses(25)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("processes = %v", got)
	}
}

func TestSampleCrashes(t *testing.T) {
	t.Parallel()
	r := rng.New(7)
	procs := make([]proto.ProcessID, 100)
	for i := range procs {
		procs[i] = proto.ProcessID(i + 1)
	}
	s := NewCrashSchedule()
	crashed := s.SampleCrashes(procs, 0.1, 50, r)
	if len(crashed) != 10 {
		t.Fatalf("crashed %d processes, want 10", len(crashed))
	}
	// All crashed by the horizon.
	if s.CrashedCount(50) != 10 {
		t.Fatalf("count at horizon = %d", s.CrashedCount(50))
	}
	seen := map[proto.ProcessID]bool{}
	for _, p := range crashed {
		if seen[p] {
			t.Fatalf("duplicate crash %v", p)
		}
		seen[p] = true
	}
}

func TestSampleCrashesEdgeCases(t *testing.T) {
	t.Parallel()
	r := rng.New(7)
	s := NewCrashSchedule()
	if got := s.SampleCrashes(nil, 0.5, 10, r); got != nil {
		t.Fatalf("crash of empty population = %v", got)
	}
	if got := s.SampleCrashes([]proto.ProcessID{1, 2}, 0, 10, r); got != nil {
		t.Fatalf("tau=0 crashed %v", got)
	}
	// tau too small for one crash in a tiny population.
	if got := s.SampleCrashes([]proto.ProcessID{1, 2}, 0.1, 10, r); got != nil {
		t.Fatalf("fractional crash = %v", got)
	}
	// Zero horizon: crash at t=0.
	s2 := NewCrashSchedule()
	s2.SampleCrashes([]proto.ProcessID{1, 2, 3, 4}, 0.5, 0, r)
	if s2.CrashedCount(0) != 2 {
		t.Fatalf("count at t=0 = %d", s2.CrashedCount(0))
	}
}

func TestCrashScheduleString(t *testing.T) {
	t.Parallel()
	s := NewCrashSchedule()
	s.CrashAt(1, 1)
	if got := s.String(); got != "crashes(1 scheduled)" {
		t.Errorf("String = %q", got)
	}
}
