package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/proto"
	"repro/internal/rng"
)

func TestLinkProfileValidate(t *testing.T) {
	t.Parallel()
	ok := []LinkProfile{
		{},
		{Epsilon: -1},              // inherit
		{Epsilon: 0.5},             // explicit
		{MinDelay: 1, MaxDelay: 3}, // range
	}
	for _, p := range ok {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", p, err)
		}
	}
	bad := []LinkProfile{
		{Epsilon: 1},
		{MinDelay: -1},
		{MaxDelay: -2},
		{MinDelay: 3, MaxDelay: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: expected an error", p)
		}
	}
}

func TestTwoClusterClasses(t *testing.T) {
	t.Parallel()
	topo := TwoCluster{Split: 4, Local: LinkProfile{Epsilon: -1}, WAN: LinkProfile{Epsilon: 0.3, MinDelay: 2, MaxDelay: 5}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src, dst proto.ProcessID
		want     LinkClass
	}{
		{1, 4, LinkLocal}, {4, 1, LinkLocal}, {5, 8, LinkLocal},
		{1, 5, LinkWAN}, {8, 4, LinkWAN},
	}
	for _, c := range cases {
		if got := topo.Class(c.src, c.dst); got != c.want {
			t.Errorf("Class(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
	if got := MaxLinkDelay(topo); got != 5 {
		t.Errorf("MaxLinkDelay = %d, want 5", got)
	}
	if (TwoCluster{}).Validate() == nil {
		t.Error("Split=0 validated")
	}
}

func TestHierarchicalClasses(t *testing.T) {
	t.Parallel()
	// Clusters of 3 processes, regions of 2 clusters: processes 1-3 and
	// 4-6 share region 0, processes 7-9 start region 1.
	topo := Hierarchical{
		ClusterSize: 3, ClustersPerRegion: 2,
		Local:  LinkProfile{},
		WAN:    LinkProfile{MinDelay: 1, MaxDelay: 1},
		Global: LinkProfile{MinDelay: 3, MaxDelay: 6},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src, dst proto.ProcessID
		want     LinkClass
	}{
		{1, 3, LinkLocal}, {4, 6, LinkLocal},
		{1, 4, LinkWAN}, {6, 2, LinkWAN},
		{1, 7, LinkGlobal}, {9, 5, LinkGlobal},
	}
	for _, c := range cases {
		if got := topo.Class(c.src, c.dst); got != c.want {
			t.Errorf("Class(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
	if got := MaxLinkDelay(topo); got != 6 {
		t.Errorf("MaxLinkDelay = %d, want 6", got)
	}
	if (Hierarchical{ClustersPerRegion: 1}).Validate() == nil {
		t.Error("ClusterSize=0 validated")
	}
}

func TestTopologyLossRates(t *testing.T) {
	t.Parallel()
	topo := TwoCluster{Split: 1, Local: LinkProfile{Epsilon: -1}, WAN: LinkProfile{Epsilon: 0.5}}
	loss := NewTopologyLoss(topo, 0.05, rng.New(1))
	const draws = 200000
	local, wan := 0, 0
	for i := 0; i < draws; i++ {
		if loss.Drop(2, 3, 0) { // local: inherits the 0.05 fallback
			local++
		}
		if loss.Drop(1, 2, 0) { // wan: explicit 0.5
			wan++
		}
	}
	if got := float64(local) / draws; math.Abs(got-0.05) > 0.01 {
		t.Errorf("local (inherited) drop rate = %v, want ≈0.05", got)
	}
	if got := float64(wan) / draws; math.Abs(got-0.5) > 0.01 {
		t.Errorf("wan drop rate = %v, want ≈0.5", got)
	}
}

func TestDelayModels(t *testing.T) {
	t.Parallel()
	r := rng.New(7)
	if d := (NoDelay{}); d.Delay(1, 2, 0, r) != 0 || d.MaxDelay() != 0 || d.Validate() != nil {
		t.Error("NoDelay misbehaves")
	}
	if d := (FixedDelay{Rounds: 3}); d.Delay(1, 2, 0, r) != 3 || d.MaxDelay() != 3 {
		t.Error("FixedDelay misbehaves")
	}
	if (FixedDelay{Rounds: -1}).Validate() == nil {
		t.Error("negative fixed delay validated")
	}
	u := UniformDelay{Min: 1, Max: 4}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		d := u.Delay(1, 2, 0, r)
		if d < 1 || d > 4 {
			t.Fatalf("uniform delay %d outside [1,4]", d)
		}
		seen[d] = true
	}
	if len(seen) != 4 {
		t.Errorf("uniform delay covered %d of 4 values", len(seen))
	}
	for _, bad := range []UniformDelay{{Min: -1, Max: 2}, {Min: 3, Max: 1}} {
		if bad.Validate() == nil {
			t.Errorf("%+v validated", bad)
		}
	}
	// Degenerate ranges draw nothing: the stream is untouched.
	before := r.State()
	if d := (UniformDelay{Min: 2, Max: 2}).Delay(1, 2, 0, r); d != 2 {
		t.Errorf("degenerate uniform delay = %d", d)
	}
	if r.State() != before {
		t.Error("degenerate uniform delay consumed a draw")
	}
}

func TestTopologyDelay(t *testing.T) {
	t.Parallel()
	topo := TwoCluster{Split: 2, Local: LinkProfile{}, WAN: LinkProfile{MinDelay: 2, MaxDelay: 4}}
	d := TopologyDelay{T: topo}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	if got := d.Delay(1, 2, 0, r); got != 0 {
		t.Errorf("local delay = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		if got := d.Delay(1, 3, 0, r); got < 2 || got > 4 {
			t.Errorf("wan delay %d outside [2,4]", got)
		}
	}
	if got := d.MaxDelay(); got != 4 {
		t.Errorf("MaxDelay = %d, want 4", got)
	}
	if (TopologyDelay{}).Validate() == nil {
		t.Error("nil topology validated")
	}
}

func TestPartitionCuts(t *testing.T) {
	t.Parallel()
	p := Partition{From: 10, To: 20, Classes: []LinkClass{LinkWAN}}
	if p.Cuts(LinkWAN, 9) || p.Cuts(LinkWAN, 20) {
		t.Error("cut outside the window")
	}
	if !p.Cuts(LinkWAN, 10) || !p.Cuts(LinkWAN, 19) {
		t.Error("window bounds wrong: [From, To) expected")
	}
	if p.Cuts(LinkLocal, 15) {
		t.Error("cut a class it does not name")
	}
	all := Partition{From: 5, To: 6}
	if !all.Cuts(LinkLocal, 5) || !all.Cuts(LinkGlobal, 5) {
		t.Error("empty Classes should cut everything")
	}
	if !CutLink([]Partition{p, all}, LinkLocal, 5) || CutLink([]Partition{p, all}, LinkLocal, 12) {
		t.Error("CutLink schedule lookup wrong")
	}
}

func TestValidatePartitions(t *testing.T) {
	t.Parallel()
	ok := []Partition{
		{From: 0, To: 5, Classes: []LinkClass{LinkWAN}},
		{From: 5, To: 8, Classes: []LinkClass{LinkWAN}}, // adjacent is fine
		{From: 2, To: 4, Classes: []LinkClass{LinkLocal}},
	}
	if err := ValidatePartitions(ok, 2, 10); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	cases := []struct {
		name    string
		parts   []Partition
		classes int
		horizon uint64
		want    string
	}{
		{"empty window", []Partition{{From: 3, To: 3}}, 1, 0, "empty window"},
		{"inverted window", []Partition{{From: 5, To: 2}}, 1, 0, "empty window"},
		{"outside horizon", []Partition{{From: 12, To: 15}}, 1, 10, "outside the horizon"},
		{"unknown class", []Partition{{From: 0, To: 2, Classes: []LinkClass{LinkGlobal}}}, 2, 0, "outside [0,2)"},
		{"duplicate class", []Partition{{From: 0, To: 2, Classes: []LinkClass{LinkWAN, LinkWAN}}}, 2, 0, "duplicate"},
		{"overlap same class", []Partition{
			{From: 0, To: 5, Classes: []LinkClass{LinkWAN}},
			{From: 4, To: 8, Classes: []LinkClass{LinkWAN}},
		}, 2, 0, "overlapping"},
		{"overlap via empty classes", []Partition{
			{From: 0, To: 5},
			{From: 4, To: 8, Classes: []LinkClass{LinkLocal}},
		}, 2, 0, "overlapping"},
	}
	for _, tc := range cases {
		err := ValidatePartitions(tc.parts, tc.classes, tc.horizon)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestLinkClassString(t *testing.T) {
	t.Parallel()
	if LinkLocal.String() != "local" || LinkWAN.String() != "wan" || LinkGlobal.String() != "global" {
		t.Error("named class strings wrong")
	}
	if LinkClass(7).String() != "class(7)" {
		t.Error("fallback class string wrong")
	}
	p := Partition{From: 1, To: 2, Classes: []LinkClass{LinkWAN}}
	if got := p.String(); got != "partition[1,2)[wan]" {
		t.Errorf("partition string = %q", got)
	}
	if got := (Partition{From: 1, To: 2}).String(); got != "partition[1,2)" {
		t.Errorf("all-class partition string = %q", got)
	}
}
