package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/proto"
	"repro/internal/rng"
)

// DelayUnit says how a DelayModel's values are to be read: as whole gossip
// rounds (the historical form, one unit per period) or as milliseconds of
// virtual time (the event-clock form, which lets latencies fall between
// ticks). The unit is a property of the model value, not of the draw: a
// simulator picks its clock from the model's unit and must refuse to mix
// units within one scenario.
type DelayUnit int

const (
	// UnitRounds reads delays as whole gossip rounds/periods.
	UnitRounds DelayUnit = iota
	// UnitMillis reads delays as milliseconds of virtual time.
	UnitMillis
)

// String implements fmt.Stringer.
func (u DelayUnit) String() string {
	switch u {
	case UnitRounds:
		return "rounds"
	case UnitMillis:
		return "ms"
	default:
		return fmt.Sprintf("unit(%d)", int(u))
	}
}

// Millis reinterprets a round-valued delay model's numbers as milliseconds
// of virtual time. The wrapped model's draws are unchanged — Millis only
// flips the unit reported by Unit, so `Millis{UniformDelay{Min: 10, Max:
// 40}}` is a 10–40 ms jitter model. Simulators must run such a model on an
// event clock; round-lockstep executors reject it.
type Millis struct {
	Model DelayModel
}

// Delay implements DelayModel; the returned value is in milliseconds.
func (m Millis) Delay(src, dst proto.ProcessID, now uint64, r *rng.Source) int {
	return m.Model.Delay(src, dst, now, r)
}

// MaxDelay implements DelayModel; the bound is in milliseconds.
func (m Millis) MaxDelay() int { return m.Model.MaxDelay() }

// Validate implements DelayModel.
func (m Millis) Validate() error {
	if m.Model == nil {
		return fmt.Errorf("fault: Millis wraps no model")
	}
	if _, nested := m.Model.(Millis); nested {
		return fmt.Errorf("fault: nested Millis wrapper")
	}
	return m.Model.Validate()
}

// Unit reports the unit a delay model's values are expressed in: UnitMillis
// for Millis-wrapped models, UnitRounds for everything else.
func Unit(m DelayModel) DelayUnit {
	if _, ok := m.(Millis); ok {
		return UnitMillis
	}
	return UnitRounds
}

// ParseDelaySpec parses the compact delay-model grammar shared by the
// matrix sweep's delay= key and the CLI:
//
//	""              no delay (nil model)
//	"2"             FixedDelay{2} rounds — the deprecated bare-integer form
//	"fixed:2"       FixedDelay{2} rounds
//	"uniform:1-4"   UniformDelay{1,4} rounds
//	"ms:fixed:30"   Millis{FixedDelay{30}} — 30 ms of virtual time
//	"ms:uniform:10-40", "ms:30"  likewise, millisecond-valued
//
// A spec that names an exactly-zero delay ("0", "fixed:0", "ms:0", ...)
// returns a nil model: zero delay is the simulator's no-delay fast path,
// and representing it as nil keeps such runs bit-identical to runs that
// never mention delay (the delay RNG stream is only split when a model is
// in force). Range errors (negative or inverted bounds) are left to the
// model's own Validate so they surface with the rest of option validation.
func ParseDelaySpec(s string) (DelayModel, error) {
	spec := strings.TrimSpace(s)
	if spec == "" {
		return nil, nil
	}
	rest, ms := strings.CutPrefix(spec, "ms:")
	var m DelayModel
	switch {
	case strings.HasPrefix(rest, "fixed:"):
		v, err := strconv.Atoi(rest[len("fixed:"):])
		if err != nil {
			return nil, fmt.Errorf("fault: delay spec %q: bad fixed value", s)
		}
		m = FixedDelay{Rounds: v}
	case strings.HasPrefix(rest, "uniform:"):
		body := rest[len("uniform:"):]
		loStr, hiStr, ok := strings.Cut(body, "-")
		if !ok {
			return nil, fmt.Errorf("fault: delay spec %q: uniform wants min-max", s)
		}
		lo, err1 := strconv.Atoi(strings.TrimSpace(loStr))
		hi, err2 := strconv.Atoi(strings.TrimSpace(hiStr))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("fault: delay spec %q: bad uniform bounds", s)
		}
		m = UniformDelay{Min: lo, Max: hi}
	default:
		v, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("fault: delay spec %q: want an integer, fixed:N, uniform:A-B, or an ms: prefix on either", s)
		}
		m = FixedDelay{Rounds: v}
	}
	if f, ok := m.(FixedDelay); ok && f.Rounds == 0 {
		return nil, nil
	}
	if ms {
		m = Millis{Model: m}
	}
	return m, nil
}
