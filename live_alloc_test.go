package lpbcast

import (
	"testing"
)

// consumingTransport is a Serializer transport stub: it fully consumes
// messages before returning (like the UDP transport, which encodes
// datagrams synchronously) and counts what it saw. It lets the alloc gate
// measure the node's own round path — engine tick, burst handling, batch
// send — without socket noise.
type consumingTransport struct {
	recv     chan Message
	messages int
	batches  int
}

func newConsumingTransport() *consumingTransport {
	return &consumingTransport{recv: make(chan Message, 64)}
}

func (t *consumingTransport) Send(m Message) error { t.messages++; return nil }

func (t *consumingTransport) SendBatch(msgs []Message) error {
	t.messages += len(msgs)
	t.batches++
	return nil
}

func (t *consumingTransport) Recv() <-chan Message { return t.recv }
func (t *consumingTransport) Close() error         { return nil }
func (t *consumingTransport) SerializesOnSend()    {}

// steadyNode builds an unstarted node with a warmed view of 15 peers over
// a consuming transport, then runs a few rounds so every scratch buffer
// reaches steady-state capacity.
func steadyNode(t testing.TB) (*Node, *consumingTransport) {
	t.Helper()
	tr := newConsumingTransport()
	seeds := make([]ProcessID, 0, 15)
	for p := ProcessID(2); p <= 16; p++ {
		seeds = append(seeds, p)
	}
	n, err := NewNode(1, tr, WithSeeds(seeds...))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.gossipRound()
	}
	return n, tr
}

// steadyBurst is a converged-system inbound burst: gossips whose events
// and digest entries the receiver already knows.
func steadyBurst(t testing.TB, n *Node) []Message {
	t.Helper()
	ev, err := n.Publish([]byte("steady"))
	if err != nil {
		t.Fatal(err)
	}
	n.gossipRound() // clears the events buffer
	g := &Gossip{
		From:   2,
		Subs:   []ProcessID{2},
		Events: []Event{{ID: ev.ID, Payload: []byte("steady")}},
		Digest: []EventID{ev.ID},
	}
	burst := make([]Message, 0, 3)
	for i := 0; i < 3; i++ {
		burst = append(burst, Message{Kind: GossipMsgKind, From: 2, To: 1, Gossip: g})
	}
	return burst
}

// TestLiveNodeRoundAllocs is the acceptance gate for the v2 runtime: a
// steady-state gossip round — periodic emission plus an inbound burst of
// already-known gossip — must cost at most 2 allocations.
func TestLiveNodeRoundAllocs(t *testing.T) {
	n, tr := steadyNode(t)
	burst := steadyBurst(t, n)
	n.handleBurst(burst) // warm the inbound path too

	allocs := testing.AllocsPerRun(200, func() {
		n.gossipRound()
		n.handleBurst(burst)
	})
	if allocs > 2 {
		t.Errorf("steady-state live round allocates %v times, want <= 2", allocs)
	}
	if tr.messages == 0 || tr.batches == 0 {
		t.Fatalf("transport saw %d messages in %d batches; the round path is not live", tr.messages, tr.batches)
	}
}

// steadyCtlNode is steadyNode with the control plane's latency collector
// attached as the node's tracer, as ClusterConfig.ControlPlane wires it.
func steadyCtlNode(t testing.TB) (*Node, *consumingTransport, *LatencyCollector) {
	t.Helper()
	tr := newConsumingTransport()
	col := NewLatencyCollector()
	seeds := make([]ProcessID, 0, 15)
	for p := ProcessID(2); p <= 16; p++ {
		seeds = append(seeds, p)
	}
	n, err := NewNode(1, tr, WithSeeds(seeds...), WithTracer(col))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.gossipRound()
	}
	return n, tr, col
}

// TestLiveNodeRoundAllocsWithControlPlane extends the zero-alloc gate to
// an observable node: with the latency collector recording trace events,
// the steady round must still cost at most 2 allocations — metrics must
// be free on the hot path.
func TestLiveNodeRoundAllocsWithControlPlane(t *testing.T) {
	n, tr, col := steadyCtlNode(t)
	burst := steadyBurst(t, n)
	n.handleBurst(burst)

	allocs := testing.AllocsPerRun(200, func() {
		n.gossipRound()
		n.handleBurst(burst)
	})
	if allocs > 2 {
		t.Errorf("observable steady-state round allocates %v times, want <= 2", allocs)
	}
	if tr.messages == 0 {
		t.Fatal("transport saw no traffic; the round path is not live")
	}
	// The collector really was on the path: the local publish in
	// steadyBurst delivered at the origin and stamped a publish time.
	if _, count, _ := col.Hist(); count != 0 {
		t.Fatalf("single node observed %d remote deliveries", count)
	}
}

// BenchmarkLiveNodeRoundCtl is BenchmarkLiveNodeRound with the control
// plane's latency collector attached; allocs/op must not regress.
func BenchmarkLiveNodeRoundCtl(b *testing.B) {
	n, _, _ := steadyCtlNode(b)
	burst := steadyBurst(b, n)
	n.handleBurst(burst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.gossipRound()
		n.handleBurst(burst)
	}
}

// TestLiveNodeRoundEmitsBatches pins the emission shape: one gossip round
// of fanout F leaves as one SendBatch carrying F messages.
func TestLiveNodeRoundEmitsBatches(t *testing.T) {
	n, tr := steadyNode(t)
	before := tr.batches
	msgsBefore := tr.messages
	n.gossipRound()
	if got := tr.batches - before; got != 1 {
		t.Errorf("round used %d SendBatch calls, want 1", got)
	}
	if got := tr.messages - msgsBefore; got != 3 {
		t.Errorf("round emitted %d messages, want fanout 3", got)
	}
}

// BenchmarkLiveNodeRound measures the v2 node's steady-state gossip round
// (tick emission + inbound burst of known gossip). The interesting number
// is allocs/op: ~0 in emission-reuse mode.
func BenchmarkLiveNodeRound(b *testing.B) {
	n, _ := steadyNode(b)
	burst := steadyBurst(b, n)
	n.handleBurst(burst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.gossipRound()
		n.handleBurst(burst)
	}
}

// BenchmarkLiveNodeRoundLegacy is the pre-v2 shape for comparison: the
// cloning Tick API and one Send per message, as the run loop worked before
// the batched redesign.
func BenchmarkLiveNodeRoundLegacy(b *testing.B) {
	n, tr := steadyNode(b)
	burst := steadyBurst(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.mu.Lock()
		var out []Message
		out = n.engine.TickAppend(n.now(), nil)
		n.mu.Unlock()
		for _, m := range out {
			_ = tr.Send(m)
		}
		for _, m := range burst {
			n.mu.Lock()
			resp := n.engine.HandleMessageAppend(m, n.now(), nil)
			n.mu.Unlock()
			for _, r := range resp {
				_ = tr.Send(r)
			}
		}
	}
}

// TestDroppedDeliveriesCountsEvictions: when the application stops
// draining Deliveries, every overwritten delivery counts as dropped — the
// eviction of the oldest buffered event is itself a loss.
func TestDroppedDeliveriesCountsEvictions(t *testing.T) {
	tr := newConsumingTransport()
	n, err := NewNode(1, tr, WithDeliveryQueue(4))
	if err != nil {
		t.Fatal(err)
	}
	const published = 10
	for i := 0; i < published; i++ {
		if _, err := n.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 4 slots survive; the other deliveries were evicted to admit newer
	// ones and must all be counted.
	if got, want := n.DroppedDeliveries(), uint64(published-4); got != want {
		t.Errorf("DroppedDeliveries = %d, want %d", got, want)
	}
	if got := len(n.Deliveries()); got != 4 {
		t.Errorf("queue holds %d deliveries, want 4", got)
	}
	// The freshest events won: the head of the queue advanced.
	ev := <-n.Deliveries()
	if ev.Payload[0] != byte(published-4) {
		t.Errorf("oldest surviving delivery = %d, want %d", ev.Payload[0], published-4)
	}
}
